// E6 — Ablations of the paper's design choices (DESIGN.md §4).
//
// (a) Ownership exchange vs copy-based helping: jp and am share the same
//     announce/help schedule; am replaces the O(1) buffer exchange with an
//     O(W) copy into an O(N^2 W) handoff matrix. Measures the per-op cost
//     of that difference at equal (N, W) — the time price am pays on top of
//     its space price.
// (b) Engine choice: the 128-bit CAS engine (dw128, no practical ABA bound)
//     vs the packed 64-bit engine (packed64, cheaper CAS, 2^32 tag).
// (c) VL cost: O(1) validation vs re-running a full O(W) LL — why the
//     paper bothers exposing VL at all.
//
// Run: ./bench_ablation
#include <benchmark/benchmark.h>

#include <vector>

#include "baseline/am_llsc.hpp"
#include "core/mwllsc.hpp"

using namespace mwllsc;

namespace {

using JP128 = core::MwLLSC<llsc::Dw128LLSC>;
using JP64 = core::MwLLSC<llsc::Packed64LLSC>;
using AM128 = baseline::AmLLSC<llsc::Dw128LLSC>;
using AM64 = baseline::AmLLSC<llsc::Packed64LLSC>;

// (a)+(b): contended RMW pairs. google-benchmark's ->Threads(t) runs the
// loop on t threads; each uses its thread_index as process id.
template <typename Impl>
void BM_ContendedRmw(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  static Impl* obj = nullptr;
  if (state.thread_index() == 0) {
    obj = new Impl(static_cast<std::uint32_t>(state.threads()), w);
  }
  std::vector<std::uint64_t> value(w);
  for (auto _ : state) {
    const auto p = static_cast<std::uint32_t>(state.thread_index());
    obj->ll(p, value.data());
    value[0] += 1;
    benchmark::DoNotOptimize(obj->sc(p, value.data()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    state.counters["sc_success_pct"] =
        100.0 * static_cast<double>(obj->stats().sc_success) /
        static_cast<double>(obj->stats().sc_ops);
    delete obj;
    obj = nullptr;
  }
}

// (c): VL vs LL as a "did anything change?" probe.
void BM_ProbeWithVl(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  JP128 obj(2, w);
  std::vector<std::uint64_t> out(w);
  obj.ll(0, out.data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.vl(0));  // O(1)
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ProbeWithLl(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  JP128 obj(2, w);
  std::vector<std::uint64_t> out(w);
  for (auto _ : state) {
    obj.ll(0, out.data());  // O(W)
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

// (a) ownership exchange (jp) vs help-copy (am), multi-threaded.
BENCHMARK_TEMPLATE(BM_ContendedRmw, JP128)
    ->Arg(16)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedRmw, AM128)
    ->Arg(16)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// (b) engine ablation at the same geometry.
BENCHMARK_TEMPLATE(BM_ContendedRmw, JP64)
    ->Arg(16)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedRmw, AM64)
    ->Arg(16)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// (c) VL's O(1) probe vs an O(W) LL re-read.
BENCHMARK(BM_ProbeWithVl)->Arg(4)->Arg(64)->Arg(1024);
BENCHMARK(BM_ProbeWithLl)->Arg(4)->Arg(64)->Arg(1024);

BENCHMARK_MAIN();
