// E6 — Ablations of the paper's design choices (DESIGN.md §4).
//
// (a) Ownership exchange vs copy-based helping: jp and am share the same
//     announce/help schedule; am replaces the O(1) buffer exchange with an
//     O(W) copy into an O(N^2 W) handoff matrix. Measures the per-op cost
//     of that difference at equal (N, W) — the time price am pays on top of
//     its space price.
// (b) Engine choice: the 128-bit CAS engine (dw128, no practical ABA bound)
//     vs the packed 64-bit engine (packed64, cheaper CAS, 2^32 tag).
// (c) VL cost: O(1) validation vs re-running a full O(W) LL — why the
//     paper bothers exposing VL at all.
//
// Run: ./bench_ablation [--trace PATH] [--metrics PATH]
//      (the timing loops run unsampled; a trace of a full run wraps the
//      per-process rings, so the export keeps only each ring's newest
//      events — fine for eyeballing in Perfetto, and the offline checker
//      tolerates the truncation)
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "baseline/am_llsc.hpp"
#include "bench_common.hpp"
#include "core/mwllsc.hpp"

using namespace mwllsc;

namespace {

using JP128 = core::MwLLSC<llsc::Dw128LLSC>;
using JP64 = core::MwLLSC<llsc::Packed64LLSC>;
using AM128 = baseline::AmLLSC<llsc::Dw128LLSC>;
using AM64 = baseline::AmLLSC<llsc::Packed64LLSC>;

bench::ObsSession* g_obs = nullptr;

template <typename Impl>
const char* impl_label();
template <>
const char* impl_label<JP128>() { return "jp dw128"; }
template <>
const char* impl_label<JP64>() { return "jp packed64"; }
template <>
const char* impl_label<AM128>() { return "am dw128"; }
template <>
const char* impl_label<AM64>() { return "am packed64"; }

// (a)+(b): contended RMW pairs. google-benchmark's ->Threads(t) runs the
// loop on t threads; each uses its thread_index as process id.
template <typename Impl>
void BM_ContendedRmw(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  static Impl* obj = nullptr;
  if (state.thread_index() == 0) {
    obj = new Impl(static_cast<std::uint32_t>(state.threads()), w);
    if (g_obs) {
      g_obs->bind_obj(*obj, std::string(impl_label<Impl>()) + " ablation n=" +
                                std::to_string(state.threads()));
    }
  }
  std::vector<std::uint64_t> value(w);
  for (auto _ : state) {
    const auto p = static_cast<std::uint32_t>(state.thread_index());
    obj->ll(p, value.data());
    value[0] += 1;
    benchmark::DoNotOptimize(obj->sc(p, value.data()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    const auto s = obj->stats();
    state.counters["sc_success_pct"] =
        100.0 * static_cast<double>(s.sc_success) /
        static_cast<double>(s.sc_ops);
    if (g_obs) {
      g_obs->registry().absorb("impl=\"" + std::string(impl_label<Impl>()) +
                                   "\",threads=\"" +
                                   std::to_string(state.threads()) + "\"",
                               s);
    }
    delete obj;
    obj = nullptr;
  }
}

// (c): VL vs LL as a "did anything change?" probe.
void BM_ProbeWithVl(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  JP128 obj(2, w);
  std::vector<std::uint64_t> out(w);
  obj.ll(0, out.data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.vl(0));  // O(1)
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ProbeWithLl(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  JP128 obj(2, w);
  std::vector<std::uint64_t> out(w);
  for (auto _ : state) {
    obj.ll(0, out.data());  // O(W)
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

// (a) ownership exchange (jp) vs help-copy (am), multi-threaded.
BENCHMARK_TEMPLATE(BM_ContendedRmw, JP128)
    ->Arg(16)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedRmw, AM128)
    ->Arg(16)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// (b) engine ablation at the same geometry.
BENCHMARK_TEMPLATE(BM_ContendedRmw, JP64)
    ->Arg(16)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_ContendedRmw, AM64)
    ->Arg(16)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// (c) VL's O(1) probe vs an O(W) LL re-read.
BENCHMARK(BM_ProbeWithVl)->Arg(4)->Arg(64)->Arg(1024);
BENCHMARK(BM_ProbeWithLl)->Arg(4)->Arg(64)->Arg(1024);

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv, 8);
  g_obs = &obs;
  // Strip the obs flags before google-benchmark parses argv (it rejects
  // unknown arguments).
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const bool obs_flag = std::string(argv[i]) == "--trace" ||
                          std::string(argv[i]) == "--metrics" ||
                          std::string(argv[i]) == "--trace-sample-shift";
    if (obs_flag) {
      ++i;  // skip the flag's value too
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return obs.finish() ? 0 : 1;
}
