// E7 — Application-level throughput (the consumers the paper's §1 cites:
// universal constructions, snapshots, wide counters).
//
// Workloads, each driven through the IMwLLSC facade over jp / am / retry /
// lock substrates, so substrate choice is the only variable:
//   * counter   — W-word fetch&add (the introduction's example, widened);
//   * snapshot  — M-component board: writers update their component,
//                 readers take atomic scans;
//   * register  — multiword read/write register, 90% reads;
//   * universal — lock-free retry vs wait-free help-all universal
//                 constructions (apps/), head to head per substrate;
//   * queue     — wait-free MPMC queue served through the universal
//                 construction (past the paper).
// Also prints each substrate's space at the application's geometry: the
// factor-N space claim translated to application terms.
//
// Op accounting counts *committed* SCs only: an LL;SC retry loop broken
// out of by the stop flag contributes nothing, so a run's last in-flight
// attempt is never sold as a completed operation.
//
// Run: ./bench_apps                  human tables
//      ./bench_apps --json PATH      perf-trajectory snapshot (plus tables)
//        [--smoke]                   reduced duration/threads for CI
//        [--trace PATH]              Chrome-trace export (MWLLSC_TRACE build)
//        [--metrics PATH]            Prometheus text (.json for JSON) export
#include <atomic>
#include <cstdio>

#include "apps/universal.hpp"
#include "apps/wf_queue.hpp"
#include "apps/wf_universal.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace mwllsc;
using util::TablePrinter;

namespace {

double mops_of(std::uint64_t ops, const util::TimedRun& run) {
  return static_cast<double>(ops) /
         (static_cast<double>(run.measured_ns()) / 1e9) / 1e6;
}

double counter_mops(core::IMwLLSC& obj, unsigned threads,
                    std::uint64_t duration_ns) {
  // Relaxed op counter: summed after join(); the join supplies the
  // happens-before for the final read (DESIGN.md §9).
  std::atomic<std::uint64_t> total{0};
  util::TimedRun run;
  run.run_for(threads, duration_ns, [&](unsigned t) {
    std::vector<std::uint64_t> cur(obj.words());
    std::uint64_t ops = 0;
    while (!run.should_stop()) {
      for (;;) {  // fetch&add via LL/SC retry
        obj.ll(t, cur.data());
        cur[0] += 1;
        if (obj.sc(t, cur.data())) {
          ++ops;  // committed — only now is it a completed operation
          break;
        }
        if (run.should_stop()) break;
      }
    }
    total.fetch_add(ops, std::memory_order_relaxed);
  });
  return mops_of(total.load(std::memory_order_relaxed), run);
}

double snapshot_scan_mops(core::IMwLLSC& obj, unsigned threads,
                          unsigned writers, std::uint32_t comp_words,
                          std::uint64_t duration_ns) {
  // Relaxed op counter: summed after join(); the join supplies the
  // happens-before for the final read (DESIGN.md §9).
  std::atomic<std::uint64_t> scans{0};
  util::TimedRun run;
  run.run_for(threads, duration_ns, [&](unsigned t) {
    std::vector<std::uint64_t> buf(obj.words());
    std::uint64_t ops = 0;
    if (t < writers) {
      // Updater of component t: LL, overwrite own slice, SC retry.
      while (!run.should_stop()) {
        for (;;) {
          obj.ll(t, buf.data());
          for (std::uint32_t k = 0; k < comp_words; ++k)
            buf[t * comp_words + k] = ops + k;
          if (obj.sc(t, buf.data())) {
            ++ops;
            break;
          }
          if (run.should_stop()) break;
        }
      }
    } else {
      while (!run.should_stop()) {  // scan = one LL
        obj.ll(t, buf.data());
        ++ops;
      }
      scans.fetch_add(ops, std::memory_order_relaxed);
    }
  });
  return mops_of(scans.load(std::memory_order_relaxed), run);
}

double register_mops(core::IMwLLSC& obj, unsigned threads,
                     std::uint64_t duration_ns) {
  // Relaxed op counter: summed after join(); the join supplies the
  // happens-before for the final read (DESIGN.md §9).
  std::atomic<std::uint64_t> total{0};
  util::TimedRun run;
  run.run_for(threads, duration_ns, [&](unsigned t) {
    std::vector<std::uint64_t> buf(obj.words());
    util::Xoshiro256 g(t + 1);
    std::uint64_t ops = 0;
    while (!run.should_stop()) {
      if (g.chance(1, 10)) {  // 10% writes
        for (;;) {
          obj.ll(t, buf.data());
          buf[0] = g.next();
          if (obj.sc(t, buf.data())) {
            ++ops;
            break;
          }
          if (run.should_stop()) break;
        }
      } else {
        obj.ll(t, buf.data());
        ++ops;
      }
    }
    total.fetch_add(ops, std::memory_order_relaxed);
  });
  return mops_of(total.load(std::memory_order_relaxed), run);
}

std::size_t shared_words(core::IMwLLSC& obj) {
  return obj.footprint().shared_bytes() / 8;
}

// Universal constructions head to head (paper §1, reference [1]): the
// lock-free LL/SC retry loop vs the wait-free help-all construction, both
// over the same substrate.
struct Counter {
  std::uint64_t v;
};
struct Inc {
  std::uint64_t operator()(Counter& c, const apps::OpDesc&) const {
    return c.v++;
  }
};

struct UniversalResult {
  double mops = 0;
  std::uint64_t ops = 0;
  std::uint64_t attempts = 0;
};

/// "-" when a very short or stalled run committed nothing, so the table
/// never divides by zero.
std::string attempts_per_op(const UniversalResult& r) {
  if (r.ops == 0) return "-";
  return TablePrinter::num(
      static_cast<double>(r.attempts) / static_cast<double>(r.ops), 2);
}

UniversalResult run_universal_lf(const apps::Substrate& substrate,
                                 unsigned threads,
                                 std::uint64_t duration_ns) {
  apps::UniversalObject<Counter> obj(threads, Counter{0}, substrate);
  // Relaxed op counter: summed after join(); the join supplies the
  // happens-before for the final read (DESIGN.md §9).
  std::atomic<std::uint64_t> ops{0};
  util::TimedRun run;
  run.run_for(threads, duration_ns, [&](unsigned t) {
    std::uint64_t mine = 0;
    while (!run.should_stop()) {
      obj.apply(t, [](Counter& c) { c.v++; });
      ++mine;
    }
    ops.fetch_add(mine, std::memory_order_relaxed);
  });
  return {mops_of(ops.load(std::memory_order_relaxed), run), ops.load(std::memory_order_relaxed), obj.attempts_hint()};
}

UniversalResult run_universal_wf(const apps::Substrate& substrate,
                                 unsigned threads,
                                 std::uint64_t duration_ns,
                                 bench::ObsSession& obs,
                                 const std::string& label) {
  apps::WfUniversal<Counter, Inc> obj(threads, Counter{0}, substrate);
  obs.bind_obj(obj, label + " wf_universal");
  // Relaxed op counter: summed after join(); the join supplies the
  // happens-before for the final read (DESIGN.md §9).
  std::atomic<std::uint64_t> ops{0};
  util::TimedRun run;
  run.run_for(threads, duration_ns, [&](unsigned t) {
    std::uint64_t mine = 0;
    while (!run.should_stop()) {
      obj.apply(t, apps::OpDesc{});
      ++mine;
    }
    ops.fetch_add(mine, std::memory_order_relaxed);
  });
  return {mops_of(ops.load(std::memory_order_relaxed), run), ops.load(std::memory_order_relaxed), obj.total_attempts()};
}

double queue_mops(const apps::Substrate& substrate, unsigned threads,
                  std::uint64_t duration_ns, bench::ObsSession& obs,
                  const std::string& label) {
  apps::WfQueue<64> q(threads, substrate);
  obs.bind_obj(q, label + " wf_queue");
  // Relaxed op counter: summed after join(); the join supplies the
  // happens-before for the final read (DESIGN.md §9).
  std::atomic<std::uint64_t> ops{0};
  util::TimedRun run;
  run.run_for(threads, duration_ns, [&](unsigned t) {
    std::uint64_t mine = 0;
    std::uint64_t v = t + 1;
    while (!run.should_stop()) {  // alternate enqueue / dequeue
      q.enqueue(t, v++);
      q.dequeue(t);
      mine += 2;
    }
    ops.fetch_add(mine, std::memory_order_relaxed);
  });
  return mops_of(ops.load(std::memory_order_relaxed), run);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::arg_value(argc, argv, "--json");
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const std::uint64_t duration_ns = smoke ? 50'000'000 : 250'000'000;
  const unsigned hw = std::max(4u, std::thread::hardware_concurrency());
  const unsigned threads = std::min(hw, smoke ? 4u : 16u);
  auto factories = bench::all_factories();
  bench::ObsSession obs(argc, argv, threads);
  bench::JsonEmitter out(
      "apps", "application workloads over LL/SC substrates, million ops/s");

  std::printf("E7: application throughput on different LL/SC substrates\n");
  std::printf("threads = %u\n\n", threads);

  {
    std::printf("wide counter (3 limbs), Mops of fetch&add:\n");
    TablePrinter table({"substrate", "Mops", "object words"});
    for (auto& f : factories) {
      auto obj = f.make(threads, 3);
      obs.bind(*obj, f.name + " counter w=3");
      const double mops = counter_mops(*obj, threads, duration_ns);
      obs.registry().absorb("impl=\"" + f.name + "\",workload=\"counter\"",
                            obj->stats());
      table.add_row({f.name, TablePrinter::num(mops, 2),
                     TablePrinter::num(shared_words(*obj))});
      out.begin_row();
      out.field("workload", "counter");
      out.field("impl", f.name);
      out.field("threads", std::uint64_t{threads});
      out.field("mops", mops);
      out.field("shared_words", std::uint64_t{shared_words(*obj)});
    }
    table.print();
    std::printf("\n");
  }

  {
    constexpr std::uint32_t kComponents = 8;
    constexpr std::uint32_t kCompWords = 4;
    const unsigned writers = std::min(threads - 1, kComponents);
    std::printf(
        "snapshot board (%u components x %u words), atomic scans, "
        "%u writers:\n",
        kComponents, kCompWords, writers);
    TablePrinter table({"substrate", "scan Mops", "object words"});
    for (auto& f : factories) {
      auto obj = f.make(threads, kComponents * kCompWords);
      obs.bind(*obj, f.name + " snapshot");
      const double mops = snapshot_scan_mops(*obj, threads, writers,
                                             kCompWords, duration_ns);
      obs.registry().absorb("impl=\"" + f.name + "\",workload=\"snapshot\"",
                            obj->stats());
      table.add_row({f.name, TablePrinter::num(mops, 2),
                     TablePrinter::num(shared_words(*obj))});
      out.begin_row();
      out.field("workload", "snapshot");
      out.field("impl", f.name);
      out.field("threads", std::uint64_t{threads});
      out.field("mops", mops);
      out.field("shared_words", std::uint64_t{shared_words(*obj)});
    }
    table.print();
    std::printf("\n");
  }

  {
    std::printf(
        "universal construction (counter op), lock-free retry vs wait-free "
        "help-all, %u threads:\n",
        threads);
    TablePrinter table(
        {"substrate", "construction", "Mops", "attempts/op", "progress"});
    for (auto& f : factories) {
      const UniversalResult lf =
          run_universal_lf(f.make, threads, duration_ns);
      const UniversalResult wf =
          run_universal_wf(f.make, threads, duration_ns, obs, f.name);
      table.add_row({f.name, "lock-free (retry)", TablePrinter::num(lf.mops, 2),
                     attempts_per_op(lf), "lock-free (unbounded attempts)"});
      table.add_row({f.name, "wait-free (help-all)",
                     TablePrinter::num(wf.mops, 2), attempts_per_op(wf),
                     "wait-free (<= 3 attempts)"});
      for (const auto* r : {&lf, &wf}) {
        out.begin_row();
        out.field("workload", "universal");
        out.field("impl", f.name);
        out.field("construction", r == &lf ? "lock_free" : "wait_free");
        out.field("threads", std::uint64_t{threads});
        out.field("mops", r->mops);
        out.field("attempts_per_op",
                  r->ops ? static_cast<double>(r->attempts) /
                               static_cast<double>(r->ops)
                         : 0.0);
      }
    }
    table.print();
    std::printf("\n");
  }

  {
    std::printf(
        "wait-free MPMC queue (cap 64) via the universal construction, "
        "enqueue+dequeue Mops:\n");
    TablePrinter table({"substrate", "Mops"});
    for (auto& f : factories) {
      const double mops = queue_mops(f.make, threads, duration_ns, obs, f.name);
      table.add_row({f.name, TablePrinter::num(mops, 2)});
      out.begin_row();
      out.field("workload", "queue");
      out.field("impl", f.name);
      out.field("threads", std::uint64_t{threads});
      out.field("mops", mops);
    }
    table.print();
    std::printf("\n");
  }

  {
    std::printf("multiword register (16 words), 90%% reads, Mops:\n");
    TablePrinter table({"substrate", "Mops", "object words"});
    for (auto& f : factories) {
      auto obj = f.make(threads, 16);
      obs.bind(*obj, f.name + " register w=16");
      const double mops = register_mops(*obj, threads, duration_ns);
      obs.registry().absorb("impl=\"" + f.name + "\",workload=\"register\"",
                            obj->stats());
      table.add_row({f.name, TablePrinter::num(mops, 2),
                     TablePrinter::num(shared_words(*obj))});
      out.begin_row();
      out.field("workload", "register");
      out.field("impl", f.name);
      out.field("threads", std::uint64_t{threads});
      out.field("mops", mops);
      out.field("shared_words", std::uint64_t{shared_words(*obj)});
    }
    table.print();
  }

  // Tracing epilogue. The per-process rings keep only the newest events,
  // and the workloads above run the substrates in factory order — so the
  // surviving suffix would be whatever ran last (lock), and the offline
  // checker's jp rules (4W+12, I2) would verify nothing. A short,
  // fixed-op-count jp run — raw RMW plus help-all applies — guarantees the
  // exported file re-confirms the paper's bounds non-vacuously.
  if (obs.tracing()) {
    auto obj = bench::factory_by_name("jp").make(threads, 8);
    obs.bind(*obj, "jp epilogue w=8");
    apps::WfUniversal<Counter, Inc> wf(threads, Counter{0},
                                       bench::factory_by_name("jp").make);
    obs.bind_obj(wf, "jp epilogue wf_universal");
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        std::vector<std::uint64_t> buf(obj->words());
        for (int i = 0; i < 500; ++i) {
          for (;;) {
            obj->ll(t, buf.data());
            buf[0] += 1;
            if (obj->sc(t, buf.data())) break;
          }
        }
        for (int i = 0; i < 200; ++i) wf.apply(t, apps::OpDesc{});
      });
    }
    for (auto& th : pool) th.join();
    obs.registry().absorb("impl=\"jp\",workload=\"epilogue\"", obj->stats());
  }

  if (!json_path.empty()) {
    if (!out.write(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return obs.finish() ? 0 : 1;
}
