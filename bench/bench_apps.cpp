// E7 — Application-level throughput (the consumers the paper's §1 cites:
// universal constructions, snapshots, wide counters).
//
// Three workloads, each driven through the IMwLLSC facade over jp / am /
// retry / lock substrates, so substrate choice is the only variable:
//   * counter   — W-word fetch&add (the introduction's example, widened);
//   * snapshot  — M-component board: writers update their component,
//                 readers take atomic scans;
//   * register  — multiword read/write register, 90% reads.
// Also prints each substrate's space at the application's geometry: the
// factor-N space claim translated to application terms.
//
// Run: ./bench_apps
#include <atomic>
#include <cstdio>

#include "apps/universal.hpp"
#include "apps/wf_universal.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

using namespace mwllsc;
using util::TablePrinter;

namespace {

constexpr std::uint64_t kDurationNs = 250'000'000;

double counter_mops(core::IMwLLSC& obj, unsigned threads) {
  std::atomic<std::uint64_t> total{0};
  util::TimedRun run;
  run.run_for(threads, kDurationNs, [&](unsigned t) {
    std::vector<std::uint64_t> cur(obj.words());
    std::uint64_t ops = 0;
    while (!run.should_stop()) {
      for (;;) {  // fetch&add via LL/SC retry
        obj.ll(t, cur.data());
        cur[0] += 1;
        if (obj.sc(t, cur.data())) break;
        if (run.should_stop()) break;
      }
      ++ops;
    }
    total.fetch_add(ops);
  });
  return static_cast<double>(total.load()) /
         (static_cast<double>(kDurationNs) / 1e9) / 1e6;
}

double snapshot_scan_mops(core::IMwLLSC& obj, unsigned threads,
                          unsigned writers, std::uint32_t comp_words) {
  const auto r = [&] {
    std::atomic<std::uint64_t> scans{0};
    util::TimedRun run;
    run.run_for(threads, kDurationNs, [&](unsigned t) {
      std::vector<std::uint64_t> buf(obj.words());
      std::uint64_t ops = 0;
      if (t < writers) {
        // Updater of component t: LL, overwrite own slice, SC retry.
        while (!run.should_stop()) {
          for (;;) {
            obj.ll(t, buf.data());
            for (std::uint32_t k = 0; k < comp_words; ++k)
              buf[t * comp_words + k] = ops + k;
            if (obj.sc(t, buf.data())) break;
            if (run.should_stop()) break;
          }
          ++ops;
        }
      } else {
        while (!run.should_stop()) {  // scan = one LL
          obj.ll(t, buf.data());
          ++ops;
        }
        scans.fetch_add(ops);
      }
    });
    return scans.load();
  }();
  return static_cast<double>(r) / (static_cast<double>(kDurationNs) / 1e9) /
         1e6;
}

double register_mops(core::IMwLLSC& obj, unsigned threads) {
  std::atomic<std::uint64_t> total{0};
  util::TimedRun run;
  run.run_for(threads, kDurationNs, [&](unsigned t) {
    std::vector<std::uint64_t> buf(obj.words());
    util::Xoshiro256 g(t + 1);
    std::uint64_t ops = 0;
    while (!run.should_stop()) {
      if (g.chance(1, 10)) {  // 10% writes
        for (;;) {
          obj.ll(t, buf.data());
          buf[0] = g.next();
          if (obj.sc(t, buf.data())) break;
          if (run.should_stop()) break;
        }
      } else {
        obj.ll(t, buf.data());
      }
      ++ops;
    }
    total.fetch_add(ops);
  });
  return static_cast<double>(total.load()) /
         (static_cast<double>(kDurationNs) / 1e9) / 1e6;
}

std::size_t shared_words(core::IMwLLSC& obj) {
  std::size_t bytes = 0;
  const auto f = obj.footprint();
  for (const auto& [name, b] : f.parts()) {
    if (name.find("per-process state") == std::string::npos) bytes += b;
  }
  return bytes / 8;
}

}  // namespace

int main() {
  const unsigned hw = std::max(4u, std::thread::hardware_concurrency());
  const unsigned threads = std::min(hw, 16u);
  auto factories = bench::all_factories();

  std::printf("E7: application throughput on different LL/SC substrates\n");
  std::printf("threads = %u\n\n", threads);

  {
    std::printf("wide counter (3 limbs), Mops of fetch&add:\n");
    TablePrinter table({"substrate", "Mops", "object words"});
    for (auto& f : factories) {
      auto obj = f.make(threads, 3);
      const double mops = counter_mops(*obj, threads);
      table.add_row({f.name, TablePrinter::num(mops, 2),
                     TablePrinter::num(shared_words(*obj))});
    }
    table.print();
    std::printf("\n");
  }

  {
    constexpr std::uint32_t kComponents = 8;
    constexpr std::uint32_t kCompWords = 4;
    const unsigned writers = std::min(threads - 1, kComponents);
    std::printf(
        "snapshot board (%u components x %u words), atomic scans, "
        "%u writers:\n",
        kComponents, kCompWords, writers);
    TablePrinter table({"substrate", "scan Mops", "object words"});
    for (auto& f : factories) {
      auto obj = f.make(threads, kComponents * kCompWords);
      const double mops =
          snapshot_scan_mops(*obj, threads, writers, kCompWords);
      table.add_row({f.name, TablePrinter::num(mops, 2),
                     TablePrinter::num(shared_words(*obj))});
    }
    table.print();
    std::printf("\n");
  }

  {
    // Universal constructions head to head: the lock-free LL/SC retry loop
    // vs the wait-free help-all construction (paper §1, reference [1]).
    struct Counter {
      std::uint64_t v;
    };
    struct Inc {
      std::uint64_t operator()(Counter& c, const apps::OpDesc&) const {
        return c.v++;
      }
    };
    std::printf(
        "universal construction (counter op), %u threads, 250 ms:\n",
        threads);
    TablePrinter table(
        {"construction", "Mops", "attempts/op", "progress"});
    {
      apps::UniversalObject<Counter> obj(threads, Counter{0});
      std::atomic<std::uint64_t> ops{0};
      util::TimedRun run;
      run.run_for(threads, kDurationNs, [&](unsigned t) {
        std::uint64_t mine = 0;
        while (!run.should_stop()) {
          obj.apply(t, [](Counter& c) { c.v++; });
          ++mine;
        }
        ops.fetch_add(mine);
      });
      const double mops = static_cast<double>(ops.load()) /
                          (static_cast<double>(kDurationNs) / 1e9) / 1e6;
      table.add_row({"lock-free (retry)", TablePrinter::num(mops, 2),
                     TablePrinter::num(static_cast<double>(obj.attempts_hint()) /
                                           static_cast<double>(ops.load()),
                                       2),
                     "lock-free (unbounded attempts)"});
    }
    {
      apps::WfUniversal<Counter, Inc> obj(threads, Counter{0});
      std::atomic<std::uint64_t> ops{0};
      util::TimedRun run;
      run.run_for(threads, kDurationNs, [&](unsigned t) {
        std::uint64_t mine = 0;
        while (!run.should_stop()) {
          obj.apply(t, apps::OpDesc{});
          ++mine;
        }
        ops.fetch_add(mine);
      });
      const double mops = static_cast<double>(ops.load()) /
                          (static_cast<double>(kDurationNs) / 1e9) / 1e6;
      table.add_row({"wait-free (help-all)", TablePrinter::num(mops, 2),
                     TablePrinter::num(static_cast<double>(obj.total_attempts()) /
                                           static_cast<double>(ops.load()),
                                       2),
                     "wait-free (<= 3 attempts)"});
    }
    table.print();
    std::printf("\n");
  }

  {
    std::printf("multiword register (16 words), 90%% reads, Mops:\n");
    TablePrinter table({"substrate", "Mops", "object words"});
    for (auto& f : factories) {
      auto obj = f.make(threads, 16);
      const double mops = register_mops(*obj, threads);
      table.add_row({f.name, TablePrinter::num(mops, 2),
                     TablePrinter::num(shared_words(*obj))});
    }
    table.print();
  }
  return 0;
}
