// Shared infrastructure for the benchmark harness (experiments E1-E9, see
// DESIGN.md §4): implementation factories behind the IMwLLSC facade and a
// timed mixed-workload throughput driver, so every series in every table is
// produced by identical code.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/am_llsc.hpp"
#include "baseline/lock_llsc.hpp"
#include "baseline/retry_llsc.hpp"
#include "core/any.hpp"
#include "core/mwllsc.hpp"
#include "obs/export.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/threads.hpp"
#include "util/timing.hpp"

namespace mwllsc::bench {

/// The implementations every comparative experiment runs.
inline std::vector<core::MwLLSCFactory> all_factories() {
  using core::IMwLLSC;
  using core::MwLLSCAdapter;
  return {
      {"jp", [](std::uint32_t n, std::uint32_t w) -> std::unique_ptr<IMwLLSC> {
         return std::make_unique<MwLLSCAdapter<core::MwLLSC<llsc::Dw128LLSC>>>(
             n, w);
       }},
      {"am", [](std::uint32_t n, std::uint32_t w) -> std::unique_ptr<IMwLLSC> {
         return std::make_unique<
             MwLLSCAdapter<baseline::AmLLSC<llsc::Dw128LLSC>>>(n, w);
       }},
      {"retry",
       [](std::uint32_t n, std::uint32_t w) -> std::unique_ptr<IMwLLSC> {
         return std::make_unique<
             MwLLSCAdapter<baseline::RetryLLSC<llsc::Dw128LLSC>>>(n, w);
       }},
      {"lock",
       [](std::uint32_t n, std::uint32_t w) -> std::unique_ptr<IMwLLSC> {
         return std::make_unique<MwLLSCAdapter<baseline::LockLLSC>>(n, w);
       }},
  };
}

inline core::MwLLSCFactory factory_by_name(const std::string& name) {
  for (auto& f : all_factories()) {
    if (f.name == name) return f;
  }
  std::abort();
}

/// Thread counts for scaling experiments: 1, 2, 4, ... up to the hardware.
inline std::vector<unsigned> scaling_thread_counts(unsigned cap = 0) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  if (cap != 0 && hw > cap) hw = cap;
  std::vector<unsigned> out;
  for (unsigned t = 1; t <= hw; t *= 2) out.push_back(t);
  if (out.back() != hw) out.push_back(hw);
  return out;
}

struct ThroughputResult {
  double mops = 0;            // million operations per second (LL+SC pairs)
  double sc_success_rate = 0; // successful SCs / attempted SCs
  core::OpStatsSnapshot stats;
};

/// Timed mixed workload: every thread loops { LL; modify; SC } on a private
/// process id for `duration_ns`. This is the paper's canonical use pattern
/// (read-modify-write of a W-word object).
inline ThroughputResult run_rmw_throughput(core::IMwLLSC& obj,
                                           unsigned threads,
                                           std::uint64_t duration_ns) {
  // Relaxed op counter: summed after join(); the join supplies the
  // happens-before for the final read (DESIGN.md §9).
  std::atomic<std::uint64_t> total_pairs{0};
  util::TimedRun run;
  run.run_for(threads, duration_ns, [&](unsigned t) {
    std::vector<std::uint64_t> value(obj.words());
    std::uint64_t pairs = 0;
    util::SplitMix64 g(t + 1);
    while (!run.should_stop()) {
      obj.ll(t, value.data());
      value[0] += 1;
      if (obj.words() > 1) value[obj.words() - 1] = g.next();
      obj.sc(t, value.data());
      ++pairs;
    }
    total_pairs.fetch_add(pairs, std::memory_order_relaxed);
  });
  ThroughputResult r;
  r.stats = obj.stats();
  r.mops = static_cast<double>(total_pairs.load(std::memory_order_relaxed)) /
           (static_cast<double>(run.measured_ns()) / 1e9) / 1e6;
  r.sc_success_rate = r.stats.sc_ops
                          ? static_cast<double>(r.stats.sc_success) /
                                static_cast<double>(r.stats.sc_ops)
                          : 0.0;
  return r;
}

/// Mixed reader/writer workload: `writers` threads do LL;SC, the rest do LL
/// only. Returns reader+writer op rates.
struct MixedResult {
  double reader_mops = 0;
  double writer_mops = 0;
  core::OpStatsSnapshot stats;
};

// ------------------------------------------------------------------------
// Recorded perf trajectory (BENCH_*.json).
//
// Benches accept `--json <path>` and emit a flat machine-readable snapshot
// instead of (or besides) their human tables, so each PR's numbers are a
// diffable artifact rather than an anecdote. The format is deliberately
// minimal: {"bench": ..., "schema": ..., "rows": [{k: v, ...}, ...]}.

/// Value of `--flag <value>` in argv, or "" if absent.
inline std::string arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return "";
}

/// True if `flag` appears in argv.
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Version of the BENCH_*.json row format; bump on breaking field changes
/// so the cross-PR trajectory tooling can tell schemas apart.
inline constexpr unsigned kBenchSchemaVersion = 2;

/// The build's `git describe` string (baked in by CMake), or "unknown"
/// when building outside a git checkout.
inline const char* git_describe() {
#if defined(MWLLSC_GIT_DESCRIBE)
  return MWLLSC_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

/// Append-style JSON snapshot writer: begin_row(), then field() calls, then
/// write(). Strings are assumed not to need escaping (impl/op names).
class JsonEmitter {
 public:
  JsonEmitter(std::string bench, std::string schema)
      : bench_(std::move(bench)), schema_(std::move(schema)) {}

  void begin_row() { rows_.emplace_back(); }

  void field(const char* k, const std::string& v) {
    rows_.back().emplace_back(k, "\"" + v + "\"");
  }
  void field(const char* k, const char* v) { field(k, std::string(v)); }
  void field(const char* k, double v) {
    char b[64];
    std::snprintf(b, sizeof(b), "%.6g", v);
    rows_.back().emplace_back(k, b);
  }
  void field(const char* k, std::uint64_t v) {
    char b[32];
    std::snprintf(b, sizeof(b), "%llu", static_cast<unsigned long long>(v));
    rows_.back().emplace_back(k, b);
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"schema\": \"%s\",\n",
                 bench_.c_str(), schema_.c_str());
    std::fprintf(f, "  \"schema_version\": %u,\n  \"git\": \"%s\",\n",
                 kBenchSchemaVersion, git_describe());
    std::fprintf(f, "  \"unix_time\": %lld,\n",
                 static_cast<long long>(std::time(nullptr)));
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    {");
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i ? ", " : "",
                     rows_[r][i].first.c_str(), rows_[r][i].second.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string bench_;
  std::string schema_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

// ------------------------------------------------------------------------
// Observability session (--trace / --metrics, DESIGN.md §8).
//
// Every bench constructs one ObsSession from argv; benches bind the
// objects they create to it, absorb their counters/latencies into the
// registry, and call finish() after the threads join. Tracing needs the
// MWLLSC_TRACE build; the metrics registry always works.

class ObsSession {
 public:
  ObsSession(int argc, char** argv, std::uint32_t nprocs,
             obs::TraceConfig cfg = {})
      : trace_path_(arg_value(argc, argv, "--trace")),
        metrics_path_(arg_value(argc, argv, "--metrics")) {
    const std::string shift = arg_value(argc, argv, "--trace-sample-shift");
    if (!shift.empty()) {
      cfg.sample_shift = static_cast<std::uint32_t>(std::atoi(shift.c_str()));
    }
    if (!trace_path_.empty()) {
#if defined(MWLLSC_TRACE)
      sink_ = std::make_unique<obs::TraceSink>(nprocs, cfg);
#else
      std::fprintf(stderr,
                   "[obs] --trace requested but this binary was built "
                   "without MWLLSC_TRACE; rebuild with -DMWLLSC_TRACE=ON. "
                   "Writing an empty trace.\n");
      sink_ = std::make_unique<obs::TraceSink>(nprocs, cfg);
#endif
    }
  }

  bool tracing() const { return sink_ != nullptr; }
  bool metrics_requested() const { return !metrics_path_.empty(); }
  obs::TraceSink* sink() { return sink_.get(); }
  obs::MetricsRegistry& registry() { return registry_; }

  /// Binds a facade object under a fresh variable id; `label` should start
  /// with the substrate name ("jp w=4 n=8") so the offline checker's
  /// prefix rules apply (the object self-describes first; this richer
  /// label overwrites it).
  std::uint32_t bind(core::IMwLLSC& obj, const std::string& label) {
    const std::uint32_t id = next_var_++;
    if (sink_) {
      obj.set_trace(sink_.get(), id);
      sink_->describe_var(id, obj.words(), label);
    }
    return id;
  }

  /// Binds any object exposing set_trace(TraceSink*, var) + words() —
  /// the apps-layer constructions.
  template <class T>
  std::uint32_t bind_obj(T& obj, const std::string& label) {
    const std::uint32_t id = next_var_++;
    if (sink_) {
      obj.set_trace(sink_.get(), id);
      sink_->describe_var(id, obj.words(), label);
    }
    return id;
  }

  /// Absorbs an implementation's counters under `impl="<name>"` labels.
  void absorb_stats(const std::string& impl,
                    const core::OpStatsSnapshot& s) {
    registry_.absorb("impl=\"" + impl + "\"", s);
  }

  /// Collects rings, derives trace metrics, and writes the requested
  /// files. Call after every traced thread has joined. Returns false if
  /// any requested file failed to write.
  bool finish() {
    bool ok = true;
    std::string err;
    if (sink_ && !trace_path_.empty()) {
      const obs::TraceData d = sink_->collect();
      registry_.absorb_trace(d);
      if (obs::write_chrome_trace(trace_path_, d, &err)) {
        std::fprintf(stderr,
                     "[obs] wrote %llu events (%u procs) to %s\n",
                     static_cast<unsigned long long>(d.total_events()),
                     static_cast<unsigned>(d.per_pid.size()),
                     trace_path_.c_str());
      } else {
        std::fprintf(stderr, "[obs] trace export failed: %s\n", err.c_str());
        ok = false;
      }
    }
    if (!metrics_path_.empty()) {
      const bool json =
          metrics_path_.size() >= 5 &&
          metrics_path_.compare(metrics_path_.size() - 5, 5, ".json") == 0;
      const bool wrote =
          json ? obs::write_metrics_json(metrics_path_, registry_, &err)
               : obs::write_prometheus(metrics_path_, registry_, &err);
      if (wrote) {
        std::fprintf(stderr, "[obs] wrote %zu metric series to %s\n",
                     registry_.metrics().size(), metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "[obs] metrics export failed: %s\n",
                     err.c_str());
        ok = false;
      }
    }
    return ok;
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::unique_ptr<obs::TraceSink> sink_;
  obs::MetricsRegistry registry_;
  std::uint32_t next_var_ = 0;
};

inline MixedResult run_mixed_throughput(core::IMwLLSC& obj, unsigned threads,
                                        unsigned writers,
                                        std::uint64_t duration_ns) {
  // Relaxed op counter: summed after join(); the join supplies the
  // happens-before for the final read (DESIGN.md §9).
  std::atomic<std::uint64_t> reads{0}, writes{0};
  util::TimedRun run;
  run.run_for(threads, duration_ns, [&](unsigned t) {
    std::vector<std::uint64_t> value(obj.words());
    std::uint64_t ops = 0;
    if (t < writers) {
      while (!run.should_stop()) {
        obj.ll(t, value.data());
        value[0] += 1;
        obj.sc(t, value.data());
        ++ops;
      }
      writes.fetch_add(ops, std::memory_order_relaxed);
    } else {
      while (!run.should_stop()) {
        obj.ll(t, value.data());
        ++ops;
      }
      reads.fetch_add(ops, std::memory_order_relaxed);
    }
  });
  MixedResult r;
  r.stats = obj.stats();
  const double secs = static_cast<double>(run.measured_ns()) / 1e9;
  r.reader_mops = static_cast<double>(reads.load(std::memory_order_relaxed)) / secs / 1e6;
  r.writer_mops = static_cast<double>(writes.load(std::memory_order_relaxed)) / secs / 1e6;
  return r;
}

}  // namespace mwllsc::bench
