// Shared infrastructure for the benchmark harness (experiments E1-E9, see
// DESIGN.md §4): implementation factories behind the IMwLLSC facade and a
// timed mixed-workload throughput driver, so every series in every table is
// produced by identical code.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/am_llsc.hpp"
#include "baseline/lock_llsc.hpp"
#include "baseline/retry_llsc.hpp"
#include "core/any.hpp"
#include "core/mwllsc.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/threads.hpp"
#include "util/timing.hpp"

namespace mwllsc::bench {

/// The implementations every comparative experiment runs.
inline std::vector<core::MwLLSCFactory> all_factories() {
  using core::IMwLLSC;
  using core::MwLLSCAdapter;
  return {
      {"jp", [](std::uint32_t n, std::uint32_t w) -> std::unique_ptr<IMwLLSC> {
         return std::make_unique<MwLLSCAdapter<core::MwLLSC<llsc::Dw128LLSC>>>(
             n, w);
       }},
      {"am", [](std::uint32_t n, std::uint32_t w) -> std::unique_ptr<IMwLLSC> {
         return std::make_unique<
             MwLLSCAdapter<baseline::AmLLSC<llsc::Dw128LLSC>>>(n, w);
       }},
      {"retry",
       [](std::uint32_t n, std::uint32_t w) -> std::unique_ptr<IMwLLSC> {
         return std::make_unique<
             MwLLSCAdapter<baseline::RetryLLSC<llsc::Dw128LLSC>>>(n, w);
       }},
      {"lock",
       [](std::uint32_t n, std::uint32_t w) -> std::unique_ptr<IMwLLSC> {
         return std::make_unique<MwLLSCAdapter<baseline::LockLLSC>>(n, w);
       }},
  };
}

inline core::MwLLSCFactory factory_by_name(const std::string& name) {
  for (auto& f : all_factories()) {
    if (f.name == name) return f;
  }
  std::abort();
}

/// Thread counts for scaling experiments: 1, 2, 4, ... up to the hardware.
inline std::vector<unsigned> scaling_thread_counts(unsigned cap = 0) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  if (cap != 0 && hw > cap) hw = cap;
  std::vector<unsigned> out;
  for (unsigned t = 1; t <= hw; t *= 2) out.push_back(t);
  if (out.back() != hw) out.push_back(hw);
  return out;
}

struct ThroughputResult {
  double mops = 0;            // million operations per second (LL+SC pairs)
  double sc_success_rate = 0; // successful SCs / attempted SCs
  core::OpStatsSnapshot stats;
};

/// Timed mixed workload: every thread loops { LL; modify; SC } on a private
/// process id for `duration_ns`. This is the paper's canonical use pattern
/// (read-modify-write of a W-word object).
inline ThroughputResult run_rmw_throughput(core::IMwLLSC& obj,
                                           unsigned threads,
                                           std::uint64_t duration_ns) {
  std::atomic<std::uint64_t> total_pairs{0};
  util::TimedRun run;
  run.run_for(threads, duration_ns, [&](unsigned t) {
    std::vector<std::uint64_t> value(obj.words());
    std::uint64_t pairs = 0;
    util::SplitMix64 g(t + 1);
    while (!run.should_stop()) {
      obj.ll(t, value.data());
      value[0] += 1;
      if (obj.words() > 1) value[obj.words() - 1] = g.next();
      obj.sc(t, value.data());
      ++pairs;
    }
    total_pairs.fetch_add(pairs);
  });
  ThroughputResult r;
  r.stats = obj.stats();
  r.mops = static_cast<double>(total_pairs.load()) /
           (static_cast<double>(run.measured_ns()) / 1e9) / 1e6;
  r.sc_success_rate = r.stats.sc_ops
                          ? static_cast<double>(r.stats.sc_success) /
                                static_cast<double>(r.stats.sc_ops)
                          : 0.0;
  return r;
}

/// Mixed reader/writer workload: `writers` threads do LL;SC, the rest do LL
/// only. Returns reader+writer op rates.
struct MixedResult {
  double reader_mops = 0;
  double writer_mops = 0;
  core::OpStatsSnapshot stats;
};

// ------------------------------------------------------------------------
// Recorded perf trajectory (BENCH_*.json).
//
// Benches accept `--json <path>` and emit a flat machine-readable snapshot
// instead of (or besides) their human tables, so each PR's numbers are a
// diffable artifact rather than an anecdote. The format is deliberately
// minimal: {"bench": ..., "schema": ..., "rows": [{k: v, ...}, ...]}.

/// Value of `--flag <value>` in argv, or "" if absent.
inline std::string arg_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return "";
}

/// True if `flag` appears in argv.
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Append-style JSON snapshot writer: begin_row(), then field() calls, then
/// write(). Strings are assumed not to need escaping (impl/op names).
class JsonEmitter {
 public:
  JsonEmitter(std::string bench, std::string schema)
      : bench_(std::move(bench)), schema_(std::move(schema)) {}

  void begin_row() { rows_.emplace_back(); }

  void field(const char* k, const std::string& v) {
    rows_.back().emplace_back(k, "\"" + v + "\"");
  }
  void field(const char* k, const char* v) { field(k, std::string(v)); }
  void field(const char* k, double v) {
    char b[64];
    std::snprintf(b, sizeof(b), "%.6g", v);
    rows_.back().emplace_back(k, b);
  }
  void field(const char* k, std::uint64_t v) {
    char b[32];
    std::snprintf(b, sizeof(b), "%llu", static_cast<unsigned long long>(v));
    rows_.back().emplace_back(k, b);
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"schema\": \"%s\",\n",
                 bench_.c_str(), schema_.c_str());
    std::fprintf(f, "  \"unix_time\": %lld,\n",
                 static_cast<long long>(std::time(nullptr)));
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    {");
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i ? ", " : "",
                     rows_[r][i].first.c_str(), rows_[r][i].second.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string bench_;
  std::string schema_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

inline MixedResult run_mixed_throughput(core::IMwLLSC& obj, unsigned threads,
                                        unsigned writers,
                                        std::uint64_t duration_ns) {
  std::atomic<std::uint64_t> reads{0}, writes{0};
  util::TimedRun run;
  run.run_for(threads, duration_ns, [&](unsigned t) {
    std::vector<std::uint64_t> value(obj.words());
    std::uint64_t ops = 0;
    if (t < writers) {
      while (!run.should_stop()) {
        obj.ll(t, value.data());
        value[0] += 1;
        obj.sc(t, value.data());
        ++ops;
      }
      writes.fetch_add(ops);
    } else {
      while (!run.should_stop()) {
        obj.ll(t, value.data());
        ++ops;
      }
      reads.fetch_add(ops);
    }
  });
  MixedResult r;
  r.stats = obj.stats();
  const double secs = static_cast<double>(run.measured_ns()) / 1e9;
  r.reader_mops = static_cast<double>(reads.load()) / secs / 1e6;
  r.writer_mops = static_cast<double>(writes.load()) / secs / 1e6;
  return r;
}

}  // namespace mwllsc::bench
