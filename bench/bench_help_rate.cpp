// E4 — The helping mechanism under load (paper §2.2).
//
// Measures, for the paper's algorithm, how often the helping machinery
// actually fires as contention and W grow:
//   * helped LLs        — Line 4 found a helper's buffer waiting,
//   * line-7 rescues    — the LL actually *returned* the handed value,
//   * help installs     — SCs that performed the ownership exchange,
//   * bank fixups       — Line-13 writes (exactly one per successful SC
//                         after the first, by invariant I2).
//
// The rates stay small at low contention (the fast path dominates) and grow
// with both N and W — yet never affect the O(W) step bound. That is the
// point of wait-freedom: help is a constant-cost insurance premium, not a
// retry loop.
//
// Run: ./bench_help_rate [--trace PATH] [--metrics PATH]
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace mwllsc;
using util::TablePrinter;

int main(int argc, char** argv) {
  constexpr std::uint64_t kDurationNs = 250'000'000;
  const auto thread_counts = bench::scaling_thread_counts();
  bench::ObsSession obs(argc, argv, thread_counts.back());

  std::printf(
      "E4: helping-mechanism rates for the paper's algorithm\n"
      "(all rates per 1000 LL operations; bank fixups per 1000 successful "
      "SCs)\n\n");

  for (std::uint32_t w : {4u, 64u}) {
    TablePrinter table({"threads", "helped LLs", "line-7 rescues",
                        "help installs", "bank fixups", "sc success %"});
    for (unsigned t : thread_counts) {
      auto obj = bench::factory_by_name("jp").make(t, w);
      obs.bind(*obj, "jp help_rate w=" + std::to_string(w) + " n=" +
                         std::to_string(t));
      const auto r = bench::run_rmw_throughput(*obj, t, kDurationNs);
      obs.registry().absorb("impl=\"jp\",w=\"" + std::to_string(w) +
                                "\",threads=\"" + std::to_string(t) + "\"",
                            r.stats);
      const double per_kll =
          r.stats.ll_ops ? 1000.0 / static_cast<double>(r.stats.ll_ops) : 0;
      const double per_ksc =
          r.stats.sc_success
              ? 1000.0 / static_cast<double>(r.stats.sc_success)
              : 0;
      table.add_row(
          {TablePrinter::num(std::size_t{t}),
           TablePrinter::num(static_cast<double>(r.stats.ll_helped) * per_kll,
                             2),
           TablePrinter::num(
               static_cast<double>(r.stats.ll_used_helped_value) * per_kll,
               2),
           TablePrinter::num(
               static_cast<double>(r.stats.helps_given) * per_kll, 2),
           TablePrinter::num(
               static_cast<double>(r.stats.bank_writes) * per_ksc, 2),
           TablePrinter::num(100.0 * r.sc_success_rate, 1)});
    }
    std::printf("W = %u words\n", w);
    table.print();
    std::printf("\n");
  }

  std::printf(
      "reader-heavy variant: 2 writers, the rest pure readers (W = 64)\n");
  {
    TablePrinter table({"threads", "reader Mops", "writer Mops",
                        "helped LLs/1k", "line-7 rescues/1k"});
    for (unsigned t : thread_counts) {
      if (t < 3) continue;
      auto obj = bench::factory_by_name("jp").make(t, 64);
      obs.bind(*obj, "jp reader_heavy n=" + std::to_string(t));
      const auto r = bench::run_mixed_throughput(*obj, t, 2, kDurationNs);
      const double per_kll =
          r.stats.ll_ops ? 1000.0 / static_cast<double>(r.stats.ll_ops) : 0;
      table.add_row(
          {TablePrinter::num(std::size_t{t}),
           TablePrinter::num(r.reader_mops, 2),
           TablePrinter::num(r.writer_mops, 2),
           TablePrinter::num(static_cast<double>(r.stats.ll_helped) * per_kll,
                             2),
           TablePrinter::num(
               static_cast<double>(r.stats.ll_used_helped_value) * per_kll,
               2)});
    }
    table.print();
  }
  return obs.finish() ? 0 : 1;
}
