// E2 — Time complexity (Theorem 1): LL and SC run in O(W), VL in O(1).
//
// Google-benchmark microbenchmark: uncontended single-thread latency of LL,
// SC and VL as W sweeps 1..1024, for the paper's algorithm and the AM-style
// baseline. The expected shape: LL/SC cost grows linearly with W (the
// W-word copies dominate); VL stays flat. AM's SC carries the extra
// help-copy overhead.
//
// Run: ./bench_latency_vs_w
#include <benchmark/benchmark.h>

#include <vector>

#include "baseline/am_llsc.hpp"
#include "baseline/lock_llsc.hpp"
#include "core/mwllsc.hpp"

using namespace mwllsc;

namespace {

template <typename Impl>
void BM_LL(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  Impl obj(2, w);
  std::vector<std::uint64_t> out(w);
  for (auto _ : state) {
    obj.ll(0, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["words"] = w;
}

template <typename Impl>
void BM_LLSC_Pair(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  Impl obj(2, w);
  std::vector<std::uint64_t> value(w);
  for (auto _ : state) {
    obj.ll(0, value.data());
    value[0] += 1;
    const bool ok = obj.sc(0, value.data());
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["words"] = w;
}

template <typename Impl>
void BM_VL(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  Impl obj(2, w);
  std::vector<std::uint64_t> out(w);
  obj.ll(0, out.data());
  for (auto _ : state) {
    const bool ok = obj.vl(0);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["words"] = w;
}

using JP128 = core::MwLLSC<llsc::Dw128LLSC>;
using JP64 = core::MwLLSC<llsc::Packed64LLSC>;
using AM128 = baseline::AmLLSC<llsc::Dw128LLSC>;
using Lock = baseline::LockLLSC;

constexpr std::int64_t kMinW = 1;
constexpr std::int64_t kMaxW = 1024;

}  // namespace

BENCHMARK_TEMPLATE(BM_LL, JP128)->RangeMultiplier(4)->Range(kMinW, kMaxW);
BENCHMARK_TEMPLATE(BM_LL, AM128)->RangeMultiplier(4)->Range(kMinW, kMaxW);
BENCHMARK_TEMPLATE(BM_LL, Lock)->RangeMultiplier(4)->Range(kMinW, kMaxW);

BENCHMARK_TEMPLATE(BM_LLSC_Pair, JP128)
    ->RangeMultiplier(4)
    ->Range(kMinW, kMaxW);
BENCHMARK_TEMPLATE(BM_LLSC_Pair, JP64)
    ->RangeMultiplier(4)
    ->Range(kMinW, kMaxW);
BENCHMARK_TEMPLATE(BM_LLSC_Pair, AM128)
    ->RangeMultiplier(4)
    ->Range(kMinW, kMaxW);
BENCHMARK_TEMPLATE(BM_LLSC_Pair, Lock)
    ->RangeMultiplier(4)
    ->Range(kMinW, kMaxW);

// VL must be flat in W (O(1), Theorem 1).
BENCHMARK_TEMPLATE(BM_VL, JP128)->RangeMultiplier(16)->Range(kMinW, kMaxW);
BENCHMARK_TEMPLATE(BM_VL, AM128)->RangeMultiplier(16)->Range(kMinW, kMaxW);

BENCHMARK_MAIN();
