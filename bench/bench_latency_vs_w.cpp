// E2 — Time complexity (Theorem 1): LL and SC run in O(W), VL in O(1).
//
// Google-benchmark microbenchmark: uncontended single-thread latency of LL,
// SC and VL as W sweeps 1..1024, for the paper's algorithm and the AM-style
// baseline. The expected shape: LL/SC cost grows linearly with W (the
// W-word copies dominate); VL stays flat. AM's SC carries the extra
// help-copy overhead.
//
// Run: ./bench_latency_vs_w                 google-benchmark tables
//      ./bench_latency_vs_w --json PATH     perf-trajectory snapshot
//        [--smoke]                          reduced grid for CI
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "baseline/am_llsc.hpp"
#include "baseline/lock_llsc.hpp"
#include "bench_common.hpp"
#include "core/mwllsc.hpp"
#include "util/timing.hpp"

using namespace mwllsc;

namespace {

template <typename Impl>
void BM_LL(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  Impl obj(2, w);
  std::vector<std::uint64_t> out(w);
  for (auto _ : state) {
    obj.ll(0, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["words"] = w;
}

template <typename Impl>
void BM_LLSC_Pair(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  Impl obj(2, w);
  std::vector<std::uint64_t> value(w);
  for (auto _ : state) {
    obj.ll(0, value.data());
    value[0] += 1;
    const bool ok = obj.sc(0, value.data());
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["words"] = w;
}

template <typename Impl>
void BM_VL(benchmark::State& state) {
  const auto w = static_cast<std::uint32_t>(state.range(0));
  Impl obj(2, w);
  std::vector<std::uint64_t> out(w);
  obj.ll(0, out.data());
  for (auto _ : state) {
    const bool ok = obj.vl(0);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["words"] = w;
}

using JP128 = core::MwLLSC<llsc::Dw128LLSC>;
using JP64 = core::MwLLSC<llsc::Packed64LLSC>;
using AM128 = baseline::AmLLSC<llsc::Dw128LLSC>;
using Lock = baseline::LockLLSC;

constexpr std::int64_t kMinW = 1;
constexpr std::int64_t kMaxW = 1024;

}  // namespace

BENCHMARK_TEMPLATE(BM_LL, JP128)->RangeMultiplier(4)->Range(kMinW, kMaxW);
BENCHMARK_TEMPLATE(BM_LL, AM128)->RangeMultiplier(4)->Range(kMinW, kMaxW);
BENCHMARK_TEMPLATE(BM_LL, Lock)->RangeMultiplier(4)->Range(kMinW, kMaxW);

BENCHMARK_TEMPLATE(BM_LLSC_Pair, JP128)
    ->RangeMultiplier(4)
    ->Range(kMinW, kMaxW);
BENCHMARK_TEMPLATE(BM_LLSC_Pair, JP64)
    ->RangeMultiplier(4)
    ->Range(kMinW, kMaxW);
BENCHMARK_TEMPLATE(BM_LLSC_Pair, AM128)
    ->RangeMultiplier(4)
    ->Range(kMinW, kMaxW);
BENCHMARK_TEMPLATE(BM_LLSC_Pair, Lock)
    ->RangeMultiplier(4)
    ->Range(kMinW, kMaxW);

// VL must be flat in W (O(1), Theorem 1).
BENCHMARK_TEMPLATE(BM_VL, JP128)->RangeMultiplier(16)->Range(kMinW, kMaxW);
BENCHMARK_TEMPLATE(BM_VL, AM128)->RangeMultiplier(16)->Range(kMinW, kMaxW);

namespace {

// --json mode: a plain stopwatch sweep over the same shapes, written as a
// BENCH_*.json snapshot (the recorded perf trajectory — see bench_common).
// Uses the IMwLLSC facade so every implementation runs identical driver
// code; the google-benchmark path above stays the precision instrument.
void json_sweep_impl(bench::JsonEmitter& out, const std::string& impl,
                     std::uint32_t w, std::uint64_t iters,
                     bench::ObsSession& obs) {
  auto obj = bench::factory_by_name(impl).make(2, w);
  obs.bind(*obj, impl + " latency w=" + std::to_string(w));
  std::vector<std::uint64_t> value(w);

  util::Stopwatch sw;
  for (std::uint64_t i = 0; i < iters; ++i) obj->ll(0, value.data());
  const double ll_ns = sw.elapsed_s() * 1e9 / static_cast<double>(iters);

  sw.reset();
  for (std::uint64_t i = 0; i < iters; ++i) {
    obj->ll(0, value.data());
    value[0] += 1;
    obj->sc(0, value.data());
  }
  const double pair_ns = sw.elapsed_s() * 1e9 / static_cast<double>(iters);

  obj->ll(0, value.data());
  sw.reset();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const bool ok = obj->vl(0);
    benchmark::DoNotOptimize(ok);
  }
  const double vl_ns = sw.elapsed_s() * 1e9 / static_cast<double>(iters);

  const auto s = obj->stats();
  obs.registry().absorb(
      "impl=\"" + impl + "\",w=\"" + std::to_string(w) + "\"", s);
  for (const auto& [op, ns] :
       {std::pair<const char*, double>{"ll", ll_ns},
        {"llsc_pair", pair_ns},
        {"vl", vl_ns}}) {
    out.begin_row();
    out.field("impl", impl);
    out.field("op", op);
    out.field("w", std::uint64_t{w});
    out.field("ns_per_op", ns);
  }
  // The jp protocol must never take its defensive retry arm.
  if (impl == "jp" && s.ll_retries != 0) {
    std::fprintf(stderr, "jp took %llu defensive LL retries at W=%u\n",
                 static_cast<unsigned long long>(s.ll_retries), w);
    std::exit(1);
  }
}

int run_json_sweep(const std::string& path, bool smoke,
                   bench::ObsSession& obs) {
  const std::vector<std::uint32_t> ws =
      smoke ? std::vector<std::uint32_t>{1, 4, 16}
            : std::vector<std::uint32_t>{1, 4, 16, 64, 256, 1024};
  bench::JsonEmitter out("latency_vs_w",
                         "uncontended single-thread latency; LL/SC O(W), "
                         "VL O(1); jp LL bound 4W+12 steps");
  for (const std::uint32_t w : ws) {
    const std::uint64_t iters =
        (smoke ? 200000u : 2000000u) / (w + 16) + 1000;
    for (const char* impl : {"jp", "am", "retry", "lock"}) {
      json_sweep_impl(out, impl, w, iters, obs);
    }
  }
  if (!out.write(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv, 2);
  const std::string json = bench::arg_value(argc, argv, "--json");
  if (!json.empty()) {
    const int rc = run_json_sweep(json, bench::has_flag(argc, argv, "--smoke"),
                                  obs);
    return obs.finish() && rc == 0 ? 0 : 1;
  }
  // Strip the obs flags before google-benchmark sees argv (it rejects
  // unknown arguments); the gbench path itself runs untraced.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const bool obs_flag = std::string(argv[i]) == "--trace" ||
                          std::string(argv[i]) == "--metrics" ||
                          std::string(argv[i]) == "--trace-sample-shift";
    if (obs_flag) {
      ++i;  // skip the flag's value too
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return obs.finish() ? 0 : 1;
}
