// E10: process-lifecycle churn on the managed jp object (DESIGN.md §10).
//
// Two scenarios over ManagedMwLLSC<jp>:
//
//   steady  threads == slots; each thread cycles join -> K fetch&adds ->
//           retire. Measures the clean lease turnover rate: every join is
//           a first-try wait-free slot claim, nothing ever degrades.
//   churn   threads == 2x slots with cooperative crashes: every A-th
//           session abandon()s its slot mid-lease (the crash seam the
//           fault-injection tests drive) while a reaper thread runs
//           orphan-only reclaim_scan()s. Joins race retirements,
//           reclamations, and each other; exhausted joins retry and then
//           fall over to the degraded lock-serialized pid. Measures
//           throughput under realistic membership pressure and reports the
//           degraded fraction so regressions in the recycling path (more
//           degradation = slower recycling) show up in the trajectory.
//
// Both scenarios verify the shared counter equals the number of successful
// SCs before reporting, so a row is also a correctness witness.
//
// Usage:
//   ./bench_membership                  human tables
//   ./bench_membership --json PATH      perf-trajectory snapshot (plus tables)
//     [--smoke]                         reduced duration/threads for CI
//     [--trace PATH | --metrics PATH]   obs/ exports (DESIGN.md §8)
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/mwllsc.hpp"
#include "util/table.hpp"
#include "membership/managed.hpp"

using namespace mwllsc;

namespace {

using Jp = core::MwLLSC<llsc::Dw128LLSC>;
using Managed = membership::ManagedMwLLSC<Jp>;

struct ChurnResult {
  double seconds = 0;
  std::uint64_t sc_successes = 0;
  std::uint64_t sessions = 0;
  membership::MembershipSnapshot mem;
};

// One worker's life: `sessions` leases, each doing `ops` successful
// fetch&adds on the shared W-word counter; abandon (cooperative crash)
// every `abandon_every`-th lease instead of retiring (0 = never).
void worker(Managed& m, std::uint64_t sessions, std::uint64_t ops,
            std::uint64_t abandon_every, std::uint64_t thread_seed) {
  std::vector<std::uint64_t> buf(m.words());
  for (std::uint64_t s = 0; s < sessions; ++s) {
    auto sess = m.join();
    for (std::uint64_t i = 0; i < ops; ++i) {
      for (;;) {
        sess.ll(buf.data());
        buf[0] += 1;
        if (sess.sc(buf.data())) break;
      }
      sess.beat();
    }
    if (abandon_every != 0 && !sess.degraded() &&
        (s + thread_seed) % abandon_every == 0) {
      sess.abandon();
    }
    // else: ~Session retires cleanly.
  }
}

ChurnResult run_scenario(Managed& m, unsigned threads,
                         std::uint64_t sessions_per_thread,
                         std::uint64_t ops_per_session,
                         std::uint64_t abandon_every) {
  std::atomic<bool> done{false};
  // Orphan-only sweeps while the workers churn: recycles abandoned slots
  // without heartbeat condemnation (every worker is genuinely live).
  std::thread reaper([&] {
    while (!done.load(std::memory_order_acquire)) {
      m.reclaim_scan(/*include_stale=*/false);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      worker(m, sessions_per_thread, ops_per_session, abandon_every, t);
    });
  }
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();
  done.store(true, std::memory_order_release);
  reaper.join();
  m.reclaim_scan(/*include_stale=*/false);  // settle the last abandons

  ChurnResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.sessions = std::uint64_t{threads} * sessions_per_thread;
  r.sc_successes = std::uint64_t{threads} * sessions_per_thread *
                   ops_per_session;
  r.mem = m.membership();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::arg_value(argc, argv, "--json");
  const bool smoke = bench::has_flag(argc, argv, "--smoke");

  const std::uint32_t kWords = 4;
  const std::uint32_t slots = smoke ? 4u : 8u;
  const unsigned hw = std::max(4u, std::thread::hardware_concurrency());
  const unsigned churn_threads = std::min(hw * 2, smoke ? 8u : 16u);
  const std::uint64_t sessions = smoke ? 64 : 512;
  const std::uint64_t ops = smoke ? 64 : 256;
  const std::uint64_t abandon_every = 5;

  bench::ObsSession obs(argc, argv, /*nprocs=*/slots + 1);
  bench::JsonEmitter out("membership",
                         "join/retire/crash-reclaim churn on managed jp");

  std::printf("E10: membership churn (jp, W=%u, %u slots)\n\n", kWords,
              slots);
  util::TablePrinter table({"scenario", "threads", "joins/s", "Mops",
                             "degraded %", "reclaims", "retries"});

  struct Scenario {
    const char* name;
    unsigned threads;
    std::uint64_t abandon_every;
  };
  const Scenario scenarios[] = {
      {"steady", slots, 0},
      {"churn", churn_threads, abandon_every},
  };
  bool ok = true;
  for (const auto& sc : scenarios) {
    Managed m(slots, kWords);
    obs.bind_obj(m, "jp managed w=" + std::to_string(kWords) + " slots=" +
                        std::to_string(slots) + " " + sc.name);
    const ChurnResult r =
        run_scenario(m, sc.threads, sessions, ops, sc.abandon_every);

    // Correctness witness: the counter saw exactly one increment per
    // successful SC, across joins, retirements, crashes, and recycling.
    std::vector<std::uint64_t> buf(m.words());
    auto probe = m.join();
    probe.ll(buf.data());
    if (buf[0] != r.sc_successes ||
        m.stats().sc_success != r.sc_successes) {
      std::fprintf(stderr,
                   "%s: counter %llu != %llu expected successful SCs\n",
                   sc.name, static_cast<unsigned long long>(buf[0]),
                   static_cast<unsigned long long>(r.sc_successes));
      ok = false;
    }
    probe.retire();

    const double joins_per_s =
        static_cast<double>(r.mem.joins + r.mem.degraded_joins) / r.seconds;
    const double mops =
        static_cast<double>(r.sc_successes) / r.seconds / 1e6;
    const double degraded_pct =
        100.0 * static_cast<double>(r.mem.degraded_joins) /
        static_cast<double>(r.mem.joins + r.mem.degraded_joins);
    table.add_row({sc.name, util::TablePrinter::num(sc.threads),
                   util::TablePrinter::num(joins_per_s, 0),
                   util::TablePrinter::num(mops, 2),
                   util::TablePrinter::num(degraded_pct, 2),
                   util::TablePrinter::num(r.mem.crash_reclaims),
                   util::TablePrinter::num(r.mem.join_retries)});

    out.begin_row();
    out.field("scenario", sc.name);
    out.field("impl", "jp");
    out.field("slots", std::uint64_t{slots});
    out.field("threads", std::uint64_t{sc.threads});
    out.field("sessions", r.sessions);
    out.field("ops_per_session", ops);
    out.field("joins_per_sec", joins_per_s);
    out.field("mops", mops);
    out.field("degraded_fraction",
              static_cast<double>(r.mem.degraded_joins) /
                  static_cast<double>(r.mem.joins + r.mem.degraded_joins));
    out.field("join_retries", r.mem.join_retries);
    out.field("crash_reclaims", r.mem.crash_reclaims);
    out.field("scans", r.mem.scans);

    m.export_metrics(obs.registry(),
                     "impl=\"jp\",scenario=\"" + std::string(sc.name) +
                         "\"");
    obs.registry().absorb("impl=\"jp\",scenario=\"" + std::string(sc.name) +
                              "\"",
                          m.stats());
  }
  table.print();
  std::printf("\n");

  if (!json_path.empty()) {
    if (!out.write(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!obs.finish()) ok = false;
  return ok ? 0 : 1;
}
