// E5 — SC success rate under contention (Figure 1 semantics).
//
// LL/SC failures are *semantic* — an SC fails iff another successful SC
// intervened — never spurious (the paper contrasts this with RLL/RSC).
// Consequently all correct implementations should show nearly identical
// success rates at equal contention: success rate ~ 1/threads once the
// object is saturated, because exactly one SC wins per "round".
//
// Run: ./bench_sc_success [--trace PATH] [--metrics PATH]
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace mwllsc;
using util::TablePrinter;

int main(int argc, char** argv) {
  constexpr std::uint64_t kDurationNs = 250'000'000;
  auto factories = bench::all_factories();
  const auto thread_counts = bench::scaling_thread_counts();
  bench::ObsSession obs(argc, argv, thread_counts.back());

  std::printf(
      "E5: SC success rate (successful SCs / attempted SCs), W = 8\n"
      "expectation: ~100%% uncontended, ~1/threads saturated, and nearly\n"
      "identical across implementations (failures are semantic, not "
      "spurious)\n\n");

  TablePrinter table(
      {"threads", "jp", "am", "retry", "lock", "1/threads"});
  for (unsigned t : thread_counts) {
    std::vector<std::string> row = {TablePrinter::num(std::size_t{t})};
    for (auto& f : factories) {
      auto obj = f.make(t, 8);
      obs.bind(*obj, f.name + " sc_success n=" + std::to_string(t));
      const auto r = bench::run_rmw_throughput(*obj, t, kDurationNs);
      obs.registry().absorb(
          "impl=\"" + f.name + "\",threads=\"" + std::to_string(t) + "\"",
          r.stats);
      row.push_back(TablePrinter::num(100.0 * r.sc_success_rate, 1) + "%");
    }
    row.push_back(TablePrinter::num(100.0 / t, 1) + "%");
    table.add_row(std::move(row));
  }
  table.print();
  return obs.finish() ? 0 : 1;
}
