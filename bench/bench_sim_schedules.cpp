// E9 — Wait-freedom step bounds under adversarial schedules (Theorem 1),
// measured in the deterministic simulator.
//
// For the paper's algorithm (jp), the AM baseline and the retry strawman,
// runs seeded-random and anti-adversarial schedules and reports the MAXIMUM
// steps any single LL took, against the O(W) bound. jp and am stay under
// their bound for every schedule; retry's worst LL grows with however long
// the adversary cares to run — the observable difference between wait-free
// and merely lock-free.
//
// Also reports simulator throughput (steps/second) and CHESS coverage
// (schedules/second), characterizing the verification substrate itself.
//
// Run: ./bench_sim_schedules
#include <cstdio>

#include "sim/harness.hpp"
#include "sim/invariants.hpp"
#include "sim/sim_am.hpp"
#include "sim/sim_jp.hpp"
#include "sim/sim_retry.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

using namespace mwllsc;
using namespace mwllsc::sim;
using util::TablePrinter;

namespace {

std::vector<std::uint64_t> init_value(std::uint32_t w) {
  return std::vector<std::uint64_t>(w, 1);
}

template <typename System>
std::uint32_t worst_ll_random(std::uint32_t n, std::uint32_t w,
                              std::uint32_t seeds) {
  std::uint32_t worst = 0;
  for (std::uint64_t s = 1; s <= seeds; ++s) {
    System sys(n, w, init_value(w));
    NullChecker chk;
    WorkloadConfig cfg;
    cfg.ops_per_proc = 300;
    cfg.seed = s;
    SimWorkload<System> wl(std::move(sys), cfg);
    const RunResult r = run_random(wl, chk, s * 7919);
    worst = std::max(worst, r.max_ll_steps);
  }
  return worst;
}

template <typename System>
std::uint32_t worst_ll_adversarial(std::uint32_t n, std::uint32_t w,
                                   std::uint64_t max_steps) {
  std::uint32_t worst = 0;
  for (std::uint32_t victim = 0; victim < n; ++victim) {
    System sys(n, w, init_value(w));
    NullChecker chk;
    WorkloadConfig cfg;
    cfg.ops_per_proc = 100000;  // effectively unbounded within max_steps
    cfg.vl_percent = 0;
    SimWorkload<System> wl(std::move(sys), cfg);
    (void)run_adversarial_anti(wl, chk, victim, w + 8, max_steps);
    worst = std::max(worst, wl.max_ll_steps());
    // For a starved in-flight LL the completed-op maximum understates the
    // damage; count the stuck operation too.
    worst = std::max(worst, wl.system().steps_in_flight(victim));
  }
  return worst;
}

// Specialization for systems without steps_in_flight: fall back to the
// completed-op maximum (their ops always complete — that is the theorem).
template <>
std::uint32_t worst_ll_adversarial<SimJpSystem>(std::uint32_t n,
                                                std::uint32_t w,
                                                std::uint64_t max_steps) {
  std::uint32_t worst = 0;
  for (std::uint32_t victim = 0; victim < n; ++victim) {
    SimJpSystem sys(n, w, init_value(w));
    JpInvariantChecker chk(sys);
    WorkloadConfig cfg;
    cfg.ops_per_proc = 2000;
    cfg.vl_percent = 0;
    SimWorkload<SimJpSystem> wl(std::move(sys), cfg);
    (void)run_adversarial_anti(wl, chk, victim, w + 8, max_steps);
    worst = std::max(worst, wl.max_ll_steps());
  }
  return worst;
}

template <>
std::uint32_t worst_ll_adversarial<SimAmSystem>(std::uint32_t n,
                                                std::uint32_t w,
                                                std::uint64_t max_steps) {
  std::uint32_t worst = 0;
  for (std::uint32_t victim = 0; victim < n; ++victim) {
    SimAmSystem sys(n, w, init_value(w));
    NullChecker chk;
    WorkloadConfig cfg;
    cfg.ops_per_proc = 2000;
    cfg.vl_percent = 0;
    SimWorkload<SimAmSystem> wl(std::move(sys), cfg);
    (void)run_adversarial_anti(wl, chk, victim, w + 8, max_steps);
    worst = std::max(worst, wl.max_ll_steps());
  }
  return worst;
}

}  // namespace

int main() {
  std::printf(
      "E9: worst-case LL steps under adversarial schedules (simulator)\n"
      "wait-free bound for jp/am: 4W+12 steps; retry has no bound\n\n");

  TablePrinter table({"N", "W", "bound 4W+12", "jp worst", "am worst",
                      "retry worst (starved)"});
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> grid = {
      {2, 4}, {3, 4}, {3, 16}, {4, 8}};
  for (const auto& [n, w] : grid) {
    const std::uint32_t r_rand_jp = worst_ll_random<SimJpSystem>(n, w, 10);
    const std::uint32_t r_rand_am = worst_ll_random<SimAmSystem>(n, w, 10);
    const std::uint32_t adv_jp = worst_ll_adversarial<SimJpSystem>(n, w, 300000);
    const std::uint32_t adv_am = worst_ll_adversarial<SimAmSystem>(n, w, 300000);
    const std::uint32_t adv_rt =
        worst_ll_adversarial<SimRetrySystem>(n, w, 300000);
    table.add_row({TablePrinter::num(std::size_t{n}),
                   TablePrinter::num(std::size_t{w}),
                   TablePrinter::num(std::size_t{4 * w + 12}),
                   TablePrinter::num(std::size_t{std::max(r_rand_jp, adv_jp)}),
                   TablePrinter::num(std::size_t{std::max(r_rand_am, adv_am)}),
                   TablePrinter::num(std::size_t{adv_rt})});
  }
  table.print();

  // Verification-substrate throughput.
  {
    std::printf("\nsimulator characterization:\n");
    util::Stopwatch sw;
    SimJpSystem sys(3, 4, init_value(4));
    JpInvariantChecker chk(sys);
    WorkloadConfig cfg;
    cfg.ops_per_proc = 20000;
    SimWorkload<SimJpSystem> wl(std::move(sys), cfg);
    const RunResult r = run_random(wl, chk, 1);
    const double secs = sw.elapsed_s();
    std::printf(
        "  random schedule: %.2f Msteps/s with full oracle+I1+I2 checking "
        "(%llu steps, ok=%d)\n",
        static_cast<double>(r.total_steps) / secs / 1e6,
        static_cast<unsigned long long>(r.total_steps), r.ok ? 1 : 0);
  }
  {
    util::Stopwatch sw;
    SimJpSystem sys(2, 2, init_value(2));
    JpInvariantChecker chk(sys);
    WorkloadConfig cfg;
    cfg.ops_per_proc = 2;
    SimWorkload<SimJpSystem> wl(std::move(sys), cfg);
    const EnumerateResult r = enumerate_preemption_bounded(wl, chk, 2, 100000);
    const double secs = sw.elapsed_s();
    std::printf(
        "  CHESS search:    %.0f schedules/s, %llu schedules with <=2 "
        "preemptions (ok=%d)\n",
        static_cast<double>(r.schedules_explored) / secs,
        static_cast<unsigned long long>(r.schedules_explored), r.ok ? 1 : 0);
  }
  return 0;
}
