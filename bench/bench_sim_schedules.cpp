// E9 — Wait-freedom step bounds under adversarial schedules (Theorem 1),
// measured in the deterministic simulator.
//
// For the paper's algorithm (jp), the AM baseline and the retry strawman,
// runs seeded-random and anti-adversarial schedules and reports the MAXIMUM
// steps any single LL took. jp now implements the paper's full protocol:
// its worst LL must stay within the 4W+12 bound of Theorem 1, independent
// of N. am stays under its O(N·W) announce/help bound; retry's worst LL
// grows with however long the adversary cares to run — the observable
// difference between wait-free and merely lock-free. Any cell where a
// measured worst case exceeds its claimed bound is flagged in the status
// column and makes the driver exit nonzero (so --smoke gates CI).
//
// Every jp run executes under JpInvariantChecker (I1 buffer ownership, I2
// bank writes, sequential-spec linearizability oracle); any violation makes
// the driver exit nonzero, so this doubles as a verification pass.
//
// Also reports simulator throughput (steps/second) and CHESS coverage
// (schedules/second), characterizing the verification substrate itself.
//
// Run: ./bench_sim_schedules [--smoke] [--metrics PATH]
//   --smoke: reduced grid and run lengths for CI smoke testing.
//   --metrics: export worst/bound cells as gauges. --trace is accepted but
//   yields an empty trace: the simulator steps hand-written step machines,
//   not the real (instrumented) protocol objects.
//
// Repro modes (every invariant-violation message embeds the knobs these
// take — "sched-seed=S" / "churn-seed=S" and "schedule=..."):
//   --seed S   [--n N] [--w W] [--ops K] [--wl-seed S2]
//       re-run the single failing random schedule seed on the jp system
//       under the full checker and exit (0 clean / 1 violation).
//   --replay "0,1,c0,r0,1,..."  [--n N] [--w W] [--ops K] [--wl-seed S2]
//       token-for-token re-execution of a recorded schedule ("P" = step,
//       "cP" = crash, "rP" = reclaim); N/W/ops/wl-seed must match the
//       failing run or the replay reports the divergence.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "sim/harness.hpp"
#include "sim/invariants.hpp"
#include "sim/sim_am.hpp"
#include "sim/sim_jp.hpp"
#include "sim/sim_retry.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

using namespace mwllsc;
using namespace mwllsc::sim;
using util::TablePrinter;

namespace {

bool g_all_ok = true;

std::vector<std::uint64_t> init_value(std::uint32_t w) {
  return std::vector<std::uint64_t>(w, 1);
}

// sim::make_checker gives jp runs the full invariant checker (constructed
// from the workload's own system, AFTER the move — never from the
// moved-from shell) and the unmodeled baselines a NullChecker.

void note(const RunResult& r, const char* what) {
  if (!r.ok) {
    std::fprintf(stderr, "INVARIANT FAILURE (%s schedule): %s\n", what,
                 r.error.c_str());
    g_all_ok = false;
  }
}

template <typename System>
std::uint32_t worst_ll_random(std::uint32_t n, std::uint32_t w,
                              std::uint32_t seeds) {
  std::uint32_t worst = 0;
  for (std::uint64_t s = 1; s <= seeds; ++s) {
    WorkloadConfig cfg;
    cfg.ops_per_proc = 300;
    cfg.seed = s;
    SimWorkload<System> wl(System(n, w, init_value(w)), cfg);
    auto chk = make_checker(wl.system());
    const RunResult r = run_random(wl, chk, s * 7919);
    note(r, "random");
    worst = std::max(worst, r.max_ll_steps);
  }
  return worst;
}

template <typename System>
std::uint32_t worst_ll_adversarial(std::uint32_t n, std::uint32_t w,
                                   std::uint64_t max_steps) {
  std::uint32_t worst = 0;
  for (std::uint32_t victim = 0; victim < n; ++victim) {
    WorkloadConfig cfg;
    cfg.ops_per_proc = 1000000;  // effectively unbounded within max_steps
    cfg.vl_percent = 0;
    SimWorkload<System> wl(System(n, w, init_value(w)), cfg);
    auto chk = make_checker(wl.system());
    const RunResult r =
        run_adversarial_anti(wl, chk, victim, w + 8, max_steps);
    note(r, "adversarial");
    worst = std::max(worst, wl.max_ll_steps());
    // For a starved in-flight LL the completed-op maximum understates the
    // damage; count the stuck operation too.
    worst = std::max(worst, wl.system().steps_in_flight(victim));
  }
  return worst;
}

// Shared setup for the --seed / --replay repro modes: one jp workload with
// the caller-specified shape, full invariant checking, verbose verdict.
int run_repro(int argc, char** argv) {
  const std::string seed_s = bench::arg_value(argc, argv, "--seed");
  const std::string replay = bench::arg_value(argc, argv, "--replay");
  auto u32 = [&](const char* flag, std::uint32_t dflt) {
    const std::string v = bench::arg_value(argc, argv, flag);
    return v.empty() ? dflt
                     : static_cast<std::uint32_t>(std::strtoul(
                           v.c_str(), nullptr, 10));
  };
  const std::uint32_t n = u32("--n", 2);
  const std::uint32_t w = u32("--w", 2);
  WorkloadConfig cfg;
  cfg.ops_per_proc = u32("--ops", 300);
  cfg.seed = u32("--wl-seed", 1);
  SimWorkload<SimJpSystem> wl(SimJpSystem(n, w, init_value(w)), cfg);
  JpInvariantChecker chk(wl.system());
  RunResult r;
  if (!replay.empty()) {
    std::printf("replaying %zu schedule chars on jp N=%u W=%u ops=%u\n",
                replay.size(), n, w, cfg.ops_per_proc);
    r = run_replay(wl, chk, replay);
  } else {
    const std::uint64_t seed = std::strtoull(seed_s.c_str(), nullptr, 10);
    std::printf("re-running sched-seed=%llu on jp N=%u W=%u ops=%u\n",
                static_cast<unsigned long long>(seed), n, w,
                cfg.ops_per_proc);
    r = run_random(wl, chk, seed);
  }
  if (!r.ok) {
    std::fprintf(stderr, "INVARIANT FAILURE: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("clean: %llu steps, worst LL %u steps (bound %u)\n",
              static_cast<unsigned long long>(r.total_steps),
              r.max_ll_steps, SimJpSystem::ll_step_bound(n, w));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!bench::arg_value(argc, argv, "--seed").empty() ||
      !bench::arg_value(argc, argv, "--replay").empty()) {
    return run_repro(argc, argv);
  }
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  bench::ObsSession obs(argc, argv, 1);
  const std::uint32_t seeds = smoke ? 4 : 10;
  const std::uint64_t max_steps = smoke ? 30000 : 300000;

  std::printf(
      "E9: worst-case LL steps under adversarial schedules (simulator)%s\n"
      "jp implements the paper's full protocol: bound 4W+12 (Theorem 1);\n"
      "am keeps the announce/help O(N*W) bound (N+3)(W+3)+2W+4;\n"
      "retry has no bound — its starved column grows with the run length\n\n",
      smoke ? " [smoke]" : "");

  TablePrinter table({"N", "W", "jp bound 4W+12", "jp worst", "am bound",
                      "am worst", "retry worst (starved)", "status"});
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> grid =
      smoke ? std::vector<std::pair<std::uint32_t, std::uint32_t>>{{2, 2},
                                                                   {2, 4}}
            : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
                  {2, 4}, {3, 4}, {3, 16}, {4, 8}, {8, 8}};
  for (const auto& [n, w] : grid) {
    const std::uint32_t r_rand_jp = worst_ll_random<SimJpSystem>(n, w, seeds);
    const std::uint32_t r_rand_am = worst_ll_random<SimAmSystem>(n, w, seeds);
    const std::uint32_t adv_jp =
        worst_ll_adversarial<SimJpSystem>(n, w, max_steps);
    const std::uint32_t adv_am =
        worst_ll_adversarial<SimAmSystem>(n, w, max_steps);
    const std::uint32_t adv_rt =
        worst_ll_adversarial<SimRetrySystem>(n, w, max_steps);
    const std::uint32_t jp_worst = std::max(r_rand_jp, adv_jp);
    const std::uint32_t am_worst = std::max(r_rand_am, adv_am);
    const std::uint32_t jp_bound = SimJpSystem::ll_step_bound(n, w);
    const std::uint32_t am_bound = SimAmSystem::ll_step_bound(n, w);
    const std::string cell =
        "n=\"" + std::to_string(n) + "\",w=\"" + std::to_string(w) + "\"";
    obs.registry().set_gauge(
        "mwllsc_sim_worst_ll_steps{impl=\"jp\"," + cell + "}", jp_worst);
    obs.registry().set_gauge(
        "mwllsc_sim_ll_step_bound{impl=\"jp\"," + cell + "}", jp_bound);
    obs.registry().set_gauge(
        "mwllsc_sim_worst_ll_steps{impl=\"am\"," + cell + "}", am_worst);
    obs.registry().set_gauge(
        "mwllsc_sim_ll_step_bound{impl=\"am\"," + cell + "}", am_bound);
    obs.registry().set_gauge(
        "mwllsc_sim_worst_ll_steps{impl=\"retry\"," + cell + "}", adv_rt);
    // Gate each implementation against its own bound: jp against the
    // paper's 4W+12, am against its O(N*W) formula.
    const bool violated = jp_worst > jp_bound || am_worst > am_bound;
    if (violated) {
      std::fprintf(stderr,
                   "BOUND VIOLATION at N=%u W=%u: jp=%u (bound %u) am=%u "
                   "(bound %u)\n",
                   n, w, jp_worst, jp_bound, am_worst, am_bound);
      g_all_ok = false;
    }
    table.add_row({TablePrinter::num(std::size_t{n}),
                   TablePrinter::num(std::size_t{w}),
                   TablePrinter::num(std::size_t{jp_bound}),
                   TablePrinter::num(std::size_t{jp_worst}),
                   TablePrinter::num(std::size_t{am_bound}),
                   TablePrinter::num(std::size_t{am_worst}),
                   TablePrinter::num(std::size_t{adv_rt}),
                   violated ? "VIOLATION" : "ok"});
  }
  table.print();

  // Verification-substrate throughput.
  {
    std::printf("\nsimulator characterization:\n");
    WorkloadConfig cfg;
    cfg.ops_per_proc = smoke ? 4000 : 20000;
    SimWorkload<SimJpSystem> wl(SimJpSystem(3, 4, init_value(4)), cfg);
    JpInvariantChecker chk(wl.system());
    util::Stopwatch sw;
    const RunResult r = run_random(wl, chk, 1);
    note(r, "characterization random");
    const double secs = sw.elapsed_s();
    std::printf(
        "  random schedule: %.2f Msteps/s with full oracle+I1+I2 checking "
        "(%llu steps, ok=%d)\n",
        static_cast<double>(r.total_steps) / secs / 1e6,
        static_cast<unsigned long long>(r.total_steps), r.ok ? 1 : 0);
  }
  {
    WorkloadConfig cfg;
    cfg.ops_per_proc = 2;
    SimWorkload<SimJpSystem> wl(SimJpSystem(2, 2, init_value(2)), cfg);
    JpInvariantChecker chk(wl.system());
    util::Stopwatch sw;
    const EnumerateResult r =
        enumerate_preemption_bounded(wl, chk, 2, 100000);
    if (!r.ok) {
      std::fprintf(stderr, "INVARIANT FAILURE (CHESS search): %s\n",
                   r.error.c_str());
      g_all_ok = false;
    }
    const double secs = sw.elapsed_s();
    std::printf(
        "  CHESS search:    %.0f schedules/s, %llu schedules with <=2 "
        "preemptions (ok=%d)\n",
        static_cast<double>(r.schedules_explored) / secs,
        static_cast<unsigned long long>(r.schedules_explored), r.ok ? 1 : 0);
  }
  {
    // Crash-stop churn: periodic crash injection + delayed reclamation
    // under the full checker — live processes must stay inside 4W+12 with
    // I1/I2 exact throughout.
    WorkloadConfig cfg;
    cfg.ops_per_proc = smoke ? 2000 : 10000;
    SimWorkload<SimJpSystem> wl(SimJpSystem(3, 4, init_value(4)), cfg);
    JpInvariantChecker chk(wl.system());
    ChurnConfig churn;
    churn.sched_seed = 42;
    const RunResult r = run_crash_churn(wl, chk, churn);
    note(r, "crash churn");
    std::printf(
        "  crash churn:     %llu steps, %llu crashes / %llu reclaims, "
        "worst live LL %u steps (bound %u, ok=%d)\n",
        static_cast<unsigned long long>(r.total_steps),
        static_cast<unsigned long long>(wl.system().crashes_total()),
        static_cast<unsigned long long>(wl.system().crash_reclaims_total()),
        r.max_ll_steps, SimJpSystem::ll_step_bound(3, 4), r.ok ? 1 : 0);
  }
  if (!obs.finish()) return 1;
  if (!g_all_ok) {
    std::fprintf(stderr, "\nE9: FAILED — invariant or bound violations\n");
    return 1;
  }
  return 0;
}
