// E1 — Space complexity (the paper's headline: Theorem 1 + §1's
// "cuts the space complexity by a factor of N").
//
// Prints, for a grid of (N, W):
//   * measured shared-memory words for JP / AM / Retry / Lock,
//   * the AM/JP ratio (the paper predicts ~N),
//   * fitted exponents of N (JP ~ N^1, AM ~ N^2),
//   * the per-component breakdown of the JP object at a reference point.
//
// Run: ./bench_space_table [--metrics PATH]
//      (no threads run here, so --trace produces an empty trace)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace mwllsc;
using util::TablePrinter;

namespace {

std::size_t shared_words(core::IMwLLSC& obj) {
  // Count shared memory the same way the paper does: everything except the
  // private per-process persistent state (the Footprint ownership tag).
  return obj.footprint().shared_bytes() / 8;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv, 1);
  std::printf(
      "E1: space complexity, measured 64-bit words of shared memory\n"
      "paper claim: JP = O(NW) vs Anderson-Moir = O(N^2 W); ratio ~ N\n\n");

  const std::vector<std::uint32_t> ns = {2, 4, 8, 16, 32, 64, 128};
  const std::vector<std::uint32_t> ws = {1, 4, 16, 64};

  auto factories = bench::all_factories();

  for (std::uint32_t w : ws) {
    TablePrinter table({"N", "W", "jp words", "am words", "retry words",
                        "lock words", "am/jp", "N (predicted am/jp)"});
    for (std::uint32_t n : ns) {
      std::vector<std::string> row = {TablePrinter::num(std::size_t{n}),
                                      TablePrinter::num(std::size_t{w})};
      std::size_t jp_words = 0, am_words = 0;
      for (auto& f : factories) {
        auto obj = f.make(n, w);
        const std::size_t words = shared_words(*obj);
        obs.registry().set_gauge("mwllsc_shared_words{impl=\"" + f.name +
                                     "\",n=\"" + std::to_string(n) +
                                     "\",w=\"" + std::to_string(w) + "\"}",
                                 static_cast<double>(words));
        if (f.name == "jp") jp_words = words;
        if (f.name == "am") am_words = words;
        row.push_back(TablePrinter::num(words));
      }
      row.push_back(TablePrinter::num(
          static_cast<double>(am_words) / static_cast<double>(jp_words), 1));
      row.push_back(TablePrinter::num(std::size_t{n}));
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }

  // Fitted exponents of N at fixed W (log-log least squares).
  {
    const std::uint32_t w = 16;
    std::vector<double> xs, jp, am, retry;
    for (std::uint32_t n : ns) {
      xs.push_back(n);
      auto j = bench::factory_by_name("jp").make(n, w);
      auto a = bench::factory_by_name("am").make(n, w);
      auto r = bench::factory_by_name("retry").make(n, w);
      jp.push_back(static_cast<double>(shared_words(*j)));
      am.push_back(static_cast<double>(shared_words(*a)));
      retry.push_back(static_cast<double>(shared_words(*r)));
    }
    std::printf("fitted space exponent in N (W=%u):\n", w);
    std::printf("  jp    : N^%.2f   (paper: 1)\n",
                util::fitted_exponent(xs, jp));
    std::printf("  am    : N^%.2f   (paper: 2)\n",
                util::fitted_exponent(xs, am));
    std::printf("  retry : N^%.2f   (lock-free strawman: 1)\n\n",
                util::fitted_exponent(xs, retry));
  }

  // Component breakdown at a reference configuration.
  {
    const std::uint32_t n = 16, w = 16;
    std::printf("JP component breakdown at N=%u, W=%u:\n", n, w);
    core::MwLLSC<llsc::Dw128LLSC> obj(n, w);
    const auto f = obj.footprint();
    TablePrinter table({"component", "bytes"});
    for (const auto& part : f.parts()) {
      table.add_row({part.name, TablePrinter::num(part.bytes)});
    }
    table.add_row({"TOTAL", TablePrinter::num(f.total_bytes())});
    table.print();

    std::printf("\nAM component breakdown at N=%u, W=%u:\n", n, w);
    baseline::AmLLSC<llsc::Dw128LLSC> am(n, w);
    const auto g = am.footprint();
    TablePrinter table2({"component", "bytes"});
    for (const auto& part : g.parts()) {
      table2.add_row({part.name, TablePrinter::num(part.bytes)});
    }
    table2.add_row({"TOTAL", TablePrinter::num(g.total_bytes())});
    table2.print();
  }
  return obs.finish() ? 0 : 1;
}
