// E8 — The stall adversary: what wait-freedom buys (paper §1: locks
// "impose waiting ... and are not fault-tolerant").
//
// Workload: read-modify-write of a W-word object. One designated SLOW
// thread injects a compute delay delta between reading the value and
// writing it back — modeling a preempted, page-faulting, or crashed-slow
// process in the middle of an update:
//   * with LL/SC (jp):       the slow thread's SC simply fails; the fast
//                            threads never wait for it;
//   * with a lock (rmw under mutex): the object is unavailable for delta on
//                            every slow-thread operation — every fast
//                            thread convoys behind it;
//   * with retry (lock-free): fast *writers* are fine, but this experiment
//                            also shows the reader-starvation flip side via
//                            p-max of a pure reader.
//
// Reported per delta: fast-thread throughput, and p50/p99/max fast-thread
// op latency.
//
// Run: ./bench_stall_adversary
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace mwllsc;
using util::TablePrinter;

namespace {

constexpr std::uint32_t kWords = 8;
constexpr std::uint64_t kDurationNs = 400'000'000;

struct StallResult {
  double fast_mops = 0;
  std::uint64_t p50 = 0, p99 = 0, max = 0;
};

/// `mode`: "llsc" — slow thread uses LL/compute(delta)/SC;
///         "lock" — ALL threads serialize a mutex around read/compute/write,
///                  slow thread computes for delta inside the lock.
StallResult run_stall(const std::string& impl, unsigned threads,
                      std::uint64_t stall_ns, bench::ObsSession& obs) {
  auto factory = bench::factory_by_name(impl);
  auto obj = factory.make(threads, kWords);
  obs.bind(*obj, impl + " stall=" + std::to_string(stall_ns / 1000) + "us");
  // Relaxed op counter: summed after join(); the join supplies the
  // happens-before for the final read (DESIGN.md §9).
  std::atomic<std::uint64_t> fast_ops{0};
  std::vector<util::LatencyHistogram> hists(threads);
  util::TimedRun run;

  run.run_for(threads, kDurationNs, [&](unsigned t) {
    std::vector<std::uint64_t> value(obj->words());
    const bool slow = (t == 0);
    std::uint64_t ops = 0;
    while (!run.should_stop()) {
      const std::uint64_t t0 = util::now_ns();
      obj->ll(t, value.data());
      value[0] += 1;
      if (slow && stall_ns > 0) {
        // Stall *mid-operation*, between LL and SC.
        const std::uint64_t until = util::now_ns() + stall_ns;
        while (util::now_ns() < until) {
        }
      }
      obj->sc(t, value.data());
      const std::uint64_t t1 = util::now_ns();
      if (!slow) {
        hists[t].record(t1 - t0);
        ++ops;
      }
    }
    if (!slow) fast_ops.fetch_add(ops, std::memory_order_relaxed);
  });

  util::LatencyHistogram all;
  for (unsigned t = 1; t < threads; ++t) all.merge(hists[t]);
  obs.registry().absorb_latency("impl=\"" + impl + "\",stall_ns=\"" +
                                    std::to_string(stall_ns) + "\"",
                                all);
  obs.registry().absorb(
      "impl=\"" + impl + "\",stall_ns=\"" + std::to_string(stall_ns) + "\"",
      obj->stats());
  StallResult r;
  r.fast_mops = static_cast<double>(fast_ops.load(std::memory_order_relaxed)) /
                (static_cast<double>(run.measured_ns()) / 1e9) / 1e6;
  r.p50 = all.percentile(0.50);
  r.p99 = all.percentile(0.99);
  r.max = static_cast<std::uint64_t>(all.max());
  return r;
}

/// The lock failure mode proper: the whole read-modify-write happens inside
/// one mutex-protected critical section (how a lock-based multiword object
/// is actually used), so a stalled holder blocks everyone.
StallResult run_lock_cs(unsigned threads, std::uint64_t stall_ns) {
  std::mutex mu;
  std::vector<std::uint64_t> value(kWords, 0);
  // Relaxed op counter: summed after join(); the join supplies the
  // happens-before for the final read (DESIGN.md §9).
  std::atomic<std::uint64_t> fast_ops{0};
  std::vector<util::LatencyHistogram> hists(threads);
  util::TimedRun run;

  run.run_for(threads, kDurationNs, [&](unsigned t) {
    const bool slow = (t == 0);
    std::uint64_t ops = 0;
    while (!run.should_stop()) {
      const std::uint64_t t0 = util::now_ns();
      {
        std::lock_guard<std::mutex> g(mu);
        value[0] += 1;  // read-modify-write under the lock
        if (slow && stall_ns > 0) {
          const std::uint64_t until = util::now_ns() + stall_ns;
          while (util::now_ns() < until) {
          }
        }
      }
      const std::uint64_t t1 = util::now_ns();
      if (!slow) {
        hists[t].record(t1 - t0);
        ++ops;
      }
    }
    if (!slow) fast_ops.fetch_add(ops, std::memory_order_relaxed);
  });

  util::LatencyHistogram all;
  for (unsigned t = 1; t < threads; ++t) all.merge(hists[t]);
  StallResult r;
  r.fast_mops = static_cast<double>(fast_ops.load(std::memory_order_relaxed)) /
                (static_cast<double>(run.measured_ns()) / 1e9) / 1e6;
  r.p50 = all.percentile(0.50);
  r.p99 = all.percentile(0.99);
  r.max = static_cast<std::uint64_t>(all.max());
  return r;
}

void print_row(TablePrinter& table, const std::string& name,
               std::uint64_t stall_us, const StallResult& r) {
  table.add_row({name, TablePrinter::num(std::size_t{stall_us}),
                 TablePrinter::num(r.fast_mops, 2),
                 TablePrinter::num(std::size_t{r.p50}),
                 TablePrinter::num(std::size_t{r.p99}),
                 TablePrinter::num(std::size_t{r.max})});
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads =
      std::min(std::max(4u, std::thread::hardware_concurrency()), 8u);
  bench::ObsSession obs(argc, argv, threads);

  std::printf(
      "E8: stall adversary — one thread stalls mid-update for delta; fast\n"
      "threads' throughput and latency tell us who waits for whom.\n"
      "threads = %u, W = %u\n\n",
      threads, kWords);

  TablePrinter table({"object", "stall (us)", "fast Mops", "p50 (ns)",
                      "p99 (ns)", "max (ns)"});
  for (std::uint64_t stall_us : {0ULL, 100ULL, 1000ULL, 10000ULL}) {
    const std::uint64_t ns = stall_us * 1000;
    print_row(table, "jp (wait-free)", stall_us,
              run_stall("jp", threads, ns, obs));
    print_row(table, "am (wait-free)", stall_us,
              run_stall("am", threads, ns, obs));
    print_row(table, "retry (lock-free)", stall_us,
              run_stall("retry", threads, ns, obs));
    print_row(table, "mutex CS (blocking)", stall_us,
              run_lock_cs(threads, ns));
  }
  table.print();

  std::printf(
      "\nreading the table: for the wait-free objects the fast threads'\n"
      "latency is untouched by the stall (the slow SC just fails); for the\n"
      "mutex the max latency tracks delta and throughput collapses — the\n"
      "convoying/fault-tolerance argument of the paper's introduction.\n");
  return obs.finish() ? 0 : 1;
}
