// E3 — Contended throughput vs thread count (the paper's §1 motivation:
// lock-free objects avoid the serialization and convoying of locks).
//
// For each W in {4, 16, 64} prints a table: threads x implementation ->
// million LL;SC pairs per second. Expected shape: jp and am track each
// other (same helping schedule; am pays an extra copy), retry is fastest at
// low contention but collapses for readers under write storms (see E8), and
// lock serializes.
//
// Run: ./bench_throughput_vs_n                 human tables
//      ./bench_throughput_vs_n --json PATH     perf-trajectory snapshot
//        [--smoke]                             reduced grid for CI
//        [--trace PATH] [--metrics PATH]       obs/ export (bench_common.hpp)
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace mwllsc;
using util::TablePrinter;

namespace {

// --json mode: the same rmw workload, written as a BENCH_*.json snapshot
// (the recorded perf trajectory — see bench_common.hpp).
int run_json_sweep(const std::string& path, bool smoke,
                   bench::ObsSession& obs) {
  const std::uint64_t duration_ns = smoke ? 50'000'000 : 250'000'000;
  const auto threads = bench::scaling_thread_counts(smoke ? 2 : 0);
  const std::vector<std::uint32_t> ws =
      smoke ? std::vector<std::uint32_t>{4} : std::vector<std::uint32_t>{4, 16, 64};
  bench::JsonEmitter out("throughput_vs_n",
                         "contended { LL; modify; SC } pairs, million/s, "
                         "one shared W-word object");
  for (const std::uint32_t w : ws) {
    for (const unsigned t : threads) {
      for (auto& f : bench::all_factories()) {
        auto obj = f.make(t, w);
        obs.bind(*obj, f.name + " rmw w=" + std::to_string(w) + " n=" +
                           std::to_string(t));
        const auto r = bench::run_rmw_throughput(*obj, t, duration_ns);
        obs.registry().absorb("impl=\"" + f.name + "\",w=\"" +
                                  std::to_string(w) + "\",threads=\"" +
                                  std::to_string(t) + "\"",
                              r.stats);
        out.begin_row();
        out.field("impl", f.name);
        out.field("threads", std::uint64_t{t});
        out.field("w", std::uint64_t{w});
        out.field("mops", r.mops);
        out.field("sc_success_rate", r.sc_success_rate);
      }
    }
  }
  if (!out.write(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto all_threads = bench::scaling_thread_counts();
  bench::ObsSession obs(argc, argv, all_threads.back());
  const std::string json = bench::arg_value(argc, argv, "--json");
  if (!json.empty()) {
    const int rc =
        run_json_sweep(json, bench::has_flag(argc, argv, "--smoke"), obs);
    return obs.finish() && rc == 0 ? 0 : 1;
  }
  constexpr std::uint64_t kDurationNs = 250'000'000;  // 250 ms per cell
  const auto& threads = all_threads;
  auto factories = bench::all_factories();

  std::printf(
      "E3: throughput under contention (million LL;SC pairs per second)\n"
      "every thread loops { LL; modify; SC } on one shared W-word object\n\n");

  for (std::uint32_t w : {4u, 16u, 64u}) {
    TablePrinter table({"threads", "jp", "am", "retry", "lock",
                        "jp sc-success"});
    for (unsigned t : threads) {
      std::vector<std::string> row = {TablePrinter::num(std::size_t{t})};
      double jp_rate = 0;
      for (auto& f : factories) {
        auto obj = f.make(t, w);
        obs.bind(*obj, f.name + " rmw w=" + std::to_string(w) + " n=" +
                           std::to_string(t));
        const auto r = bench::run_rmw_throughput(*obj, t, kDurationNs);
        obs.registry().absorb("impl=\"" + f.name + "\",w=\"" +
                                  std::to_string(w) + "\",threads=\"" +
                                  std::to_string(t) + "\"",
                              r.stats);
        row.push_back(TablePrinter::num(r.mops, 2));
        if (f.name == "jp") jp_rate = r.sc_success_rate;
      }
      row.push_back(TablePrinter::num(100.0 * jp_rate, 1) + "%");
      table.add_row(std::move(row));
    }
    std::printf("W = %u words\n", w);
    table.print();
    std::printf("\n");
  }

  // Disjoint-access scaling: K independent objects, each thread works on a
  // random object per op. With contention spread across objects, the
  // CAS-based implementations scale again — the single-object tables above
  // measure the worst case, this one the common case.
  {
    constexpr std::uint32_t kObjects = 32;
    constexpr std::uint32_t kW = 8;
    std::printf("disjoint-access scaling: %u independent objects, W = %u\n",
                kObjects, kW);
    TablePrinter table({"threads", "jp", "am", "retry", "lock"});
    for (unsigned t : threads) {
      std::vector<std::string> row = {TablePrinter::num(std::size_t{t})};
      for (auto& f : factories) {
        std::vector<std::unique_ptr<core::IMwLLSC>> objs;
        for (std::uint32_t k = 0; k < kObjects; ++k)
          objs.push_back(f.make(t, kW));
        // Relaxed op counter: summed after join(); the join supplies the
        // happens-before for the final read (DESIGN.md §9).
        std::atomic<std::uint64_t> pairs{0};
        util::TimedRun run;
        run.run_for(t, kDurationNs, [&](unsigned tid) {
          std::vector<std::uint64_t> value(kW);
          util::Xoshiro256 g(tid + 1);
          std::uint64_t mine = 0;
          while (!run.should_stop()) {
            core::IMwLLSC& obj = *objs[g.next_below(kObjects)];
            obj.ll(tid, value.data());
            value[0] += 1;
            obj.sc(tid, value.data());
            ++mine;
          }
          pairs.fetch_add(mine, std::memory_order_relaxed);
        });
        row.push_back(TablePrinter::num(
            static_cast<double>(pairs.load(std::memory_order_relaxed)) /
                (static_cast<double>(run.measured_ns()) / 1e9) / 1e6,
            2));
      }
      table.add_row(std::move(row));
    }
    table.print();
  }
  return obs.finish() ? 0 : 1;
}
