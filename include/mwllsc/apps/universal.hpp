// Lock-free universal construction over a multiword LL/SC variable (the
// consumer the paper's §1 leads with): the object state lives directly in
// the W-word variable, and apply is the canonical { LL; compute; SC }
// retry loop. Progress is lock-free — an apply retries only because some
// other apply committed — but an individual process can starve; the
// wait-free help-all construction is wf_universal.hpp.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>

#include "core/any.hpp"
#include "core/mwllsc.hpp"

namespace mwllsc::apps {

/// Factory producing the multiword LL/SC variable a construction runs on:
/// (nprocs, words) -> facade. `core::MwLLSCFactory::make` has exactly this
/// shape, so the bench factory list (jp / am / retry / lock) plugs
/// straight in; the default is the paper's wait-free jp protocol.
using Substrate =
    std::function<std::unique_ptr<core::IMwLLSC>(std::uint32_t, std::uint32_t)>;

inline Substrate jp_substrate() {
  return [](std::uint32_t n, std::uint32_t w) -> std::unique_ptr<core::IMwLLSC> {
    return std::make_unique<core::MwLLSCAdapter<core::MwLLSC<llsc::Dw128LLSC>>>(
        n, w);
  };
}

/// Sequential object of type T lifted to a linearizable concurrent object.
/// T must be trivially copyable: it is stored bytewise in the variable's
/// ceil(sizeof(T)/8) words. Each process id (0..N-1) must be driven by at
/// most one thread at a time, mirroring the LL/SC contract.
template <class T>
class UniversalObject {
  static_assert(std::is_trivially_copyable_v<T>,
                "state is stored bytewise in the LL/SC variable");

 public:
  static constexpr std::uint32_t kWords =
      static_cast<std::uint32_t>((sizeof(T) + 7) / 8);

  UniversalObject(std::uint32_t nprocs, const T& initial,
                  Substrate substrate = jp_substrate())
      : n_(nprocs), obj_(substrate(nprocs, kWords)), priv_(new Priv[nprocs]) {
    // Install the initial value; the constructor runs single-threaded, so
    // the first SC cannot be interfered with.
    Priv& p0 = priv_[0];
    obj_->ll(0, p0.scratch);
    std::memcpy(p0.scratch, &initial, sizeof(T));
    const bool ok = obj_->sc(0, p0.scratch);
    assert(ok);
    (void)ok;
  }

  /// Applies `mutate(state)` atomically. Lock-free: retries until this
  /// process's SC commits, so exactly one committed SC per apply.
  template <class F>
  void apply(std::uint32_t p, F&& mutate) {
    assert(p < n_);
    Priv& me = priv_[p];
    std::uint64_t attempts = 0;
    for (;;) {
      ++attempts;
      obj_->ll(p, me.scratch);
      T state;
      std::memcpy(&state, me.scratch, sizeof(T));
      mutate(state);
      std::memcpy(me.scratch, &state, sizeof(T));
      if (obj_->sc(p, me.scratch)) break;
    }
    me.attempts.store(me.attempts.load(std::memory_order_relaxed) + attempts,
                      std::memory_order_relaxed);
  }

  /// Reads the current state (one LL — an atomic snapshot).
  T read(std::uint32_t p) {
    assert(p < n_);
    obj_->ll(p, priv_[p].scratch);
    T state;
    std::memcpy(&state, priv_[p].scratch, sizeof(T));
    return state;
  }

  /// Total { LL; compute; SC } rounds across all applies so far. A hint:
  /// per-process cells are summed relaxed, so a concurrent reader may see
  /// a slightly stale total. attempts == applies iff there was no retry.
  std::uint64_t attempts_hint() const {
    std::uint64_t t = 0;
    for (std::uint32_t p = 0; p < n_; ++p)
      t += priv_[p].attempts.load(std::memory_order_relaxed);
    return t;
  }

  core::IMwLLSC& substrate() { return *obj_; }
  std::uint32_t procs() const { return n_; }

 private:
  struct alignas(64) Priv {
    std::uint64_t scratch[kWords];
    std::atomic<std::uint64_t> attempts{0};
  };

  std::uint32_t n_;
  std::unique_ptr<core::IMwLLSC> obj_;
  std::unique_ptr<Priv[]> priv_;
};

}  // namespace mwllsc::apps
