// Wait-free bounded multi-producer multi-consumer FIFO queue, served
// through the universal construction (the "real structure" step past the
// paper, in the spirit of the Kogan-Petrank wait-free queue): the ring,
// head and tail live inside one multiword LL/SC variable, so enqueue and
// dequeue inherit WfUniversal's help-all protocol and its <= 3 LL/SC
// attempt bound — no per-structure helping code at all.
//
// The trade is honest: every operation copies the whole state, so this is
// a small-queue construction (Cap in the tens), not a streaming channel.
// What it buys is the universal construction's guarantees for free:
// linearizability from LL/SC semantics, wait-freedom from help-all.
#pragma once

#include <cstdint>

#include "apps/wf_universal.hpp"

namespace mwllsc::apps {

/// Returned by dequeue on an empty queue. Enqueued values must differ
/// from it (checked by enqueue, which rejects the sentinel).
inline constexpr std::uint64_t kQueueEmpty = ~0ULL;

template <std::size_t Cap>
class WfQueue {
  static_assert(Cap > 0);

 public:
  explicit WfQueue(std::uint32_t nprocs, Substrate substrate = jp_substrate())
      : u_(nprocs, State{}, std::move(substrate)) {}

  /// False iff the queue was full (or v is the empty sentinel).
  bool enqueue(std::uint32_t p, std::uint64_t v) {
    if (v == kQueueEmpty) return false;
    return u_.apply(p, OpDesc{kEnqueue, v}) != 0;
  }

  /// The head value, or kQueueEmpty.
  std::uint64_t dequeue(std::uint32_t p) {
    return u_.apply(p, OpDesc{kDequeue, 0});
  }

  std::size_t size(std::uint32_t p) {
    const State s = u_.read(p);
    return static_cast<std::size_t>(s.tail - s.head);
  }

  static constexpr std::size_t capacity() { return Cap; }

  std::uint64_t total_attempts() const { return u_.total_attempts(); }
  std::uint64_t max_attempts() const { return u_.max_attempts(); }
  core::IMwLLSC& substrate() { return u_.substrate(); }
  std::uint32_t words() const { return u_.words(); }

  void set_trace(obs::TraceSink* sink, std::uint32_t var) {
    u_.set_trace(sink, var);
  }

 private:
  // No default member initializers: the type must stay *trivial* (not just
  // trivially copyable) so the bytewise encode/decode through the LL/SC
  // variable is clean. State{} value-initializes everything to zero.
  struct State {
    std::uint64_t head;  // monotone; ring index is head % Cap
    std::uint64_t tail;
    std::uint64_t ring[Cap];
  };

  static constexpr std::uint64_t kEnqueue = 1;
  static constexpr std::uint64_t kDequeue = 2;

  struct Ops {
    std::uint64_t operator()(State& s, const OpDesc& d) const {
      if (d.kind == kEnqueue) {
        if (s.tail - s.head == Cap) return 0;  // full
        s.ring[s.tail % Cap] = d.arg;
        ++s.tail;
        return 1;
      }
      if (s.head == s.tail) return kQueueEmpty;
      const std::uint64_t v = s.ring[s.head % Cap];
      ++s.head;
      return v;
    }
  };

  WfUniversal<State, Ops> u_;
};

}  // namespace mwllsc::apps
