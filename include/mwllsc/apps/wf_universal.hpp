// Wait-free universal construction (Herlihy-style, value version) over a
// multiword LL/SC variable, in the fast-path/help idiom of telamon's
// normalized lock-free -> wait-free transformation and Brown-Ellen-Ruppert's
// pragmatic primitives: every operation is announced before the first LL,
// and every SC attempt applies *all* announced pending operations before
// trying to install — so a process whose SC keeps losing is carried along
// by the winners.
//
// State layout inside the variable (W = ceil(sizeof(T)/8) + 2N words):
//   [0, payload)                the sequential object T, bytewise;
//   payload + 2q               applied_seq[q] — seq of q's last applied op;
//   payload + 2q + 1           result[q]      — its return value.
// Because LL returns an atomic snapshot, a process that finds its own seq
// applied can read its result from the same snapshot consistently.
//
// Attempt bound (the wait-free argument): suppose p's SCs at attempts 1
// and 2 both fail. Attempt 1 fails because some SC by w1 committed inside
// (LL1, SC1); attempt 2 because some SC by w2 committed inside (LL2, SC2).
// w2's LL must follow w1's SC (else w1's SC would have killed w2's link),
// which follows p's LL1, which follows p's announce — so w2 saw the
// announce and its committed SC applied p's op. Attempt 3's LL therefore
// observes applied_seq[p] == seq and returns without another SC:
// **at most kMaxAttempts = 3 LL/SC rounds per apply**, over any
// linearizable substrate. (Genuine end-to-end wait-freedom additionally
// needs the substrate's own LL and SC to be wait-free — jp; under retry
// the construction is only as good as the substrate's LL.)
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "apps/universal.hpp"
#include "core/any.hpp"
#include "obs/trace.hpp"

namespace mwllsc::apps {

/// Announced-operation descriptor: an opcode plus one argument word. The
/// interpretation belongs entirely to the Op functor; constructions with a
/// single operation (e.g. a counter increment) ignore it.
struct OpDesc {
  std::uint64_t kind = 0;
  std::uint64_t arg = 0;
};

/// Wait-free lifting of sequential object T with operation functor Op
/// (`std::uint64_t Op::operator()(T&, const OpDesc&) const`, a pure
/// function of its arguments — every helper must compute the same result).
template <class T, class Op>
class WfUniversal {
  static_assert(std::is_trivially_copyable_v<T>,
                "state is stored bytewise in the LL/SC variable");

 public:
  /// Per-apply bound on { LL; help-all; SC } rounds (see file comment).
  static constexpr std::uint64_t kMaxAttempts = 3;

  /// Test seam, mirroring core::MwLLSC::StepHook: called at "announced"
  /// (op published, before the first LL), "linked" (snapshot taken, before
  /// help-all + SC) and "sc_failed". Lets a test park a process at an
  /// exact protocol point and drive the help-all path deterministically.
  using StepHook = void (*)(void* ctx, const char* point, std::uint32_t pid);

  WfUniversal(std::uint32_t nprocs, const T& initial,
              Substrate substrate = jp_substrate())
      : n_(nprocs),
        payload_words_(static_cast<std::uint32_t>((sizeof(T) + 7) / 8)),
        words_(payload_words_ + 2 * nprocs),
        obj_(substrate(nprocs, words_)),
        slots_(new Slot[nprocs]),
        priv_(new Priv[nprocs]) {
    for (std::uint32_t p = 0; p < n_; ++p)
      priv_[p].scratch.assign(words_, 0);
    // Install the initial state single-threaded: T's bytes, every
    // applied_seq and result zero.
    std::uint64_t* buf = priv_[0].scratch.data();
    obj_->ll(0, buf);
    std::memset(buf, 0, static_cast<std::size_t>(words_) * 8);
    std::memcpy(buf, &initial, sizeof(T));
    const bool ok = obj_->sc(0, buf);
    assert(ok);
    (void)ok;
  }

  /// Applies Op with descriptor `d` atomically and returns its result.
  /// Completes in at most kMaxAttempts LL/SC rounds.
  std::uint64_t apply(std::uint32_t p, const OpDesc& d) {
    assert(p < n_);
    Slot& a = slots_[p];
    Priv& me = priv_[p];
    const std::uint64_t seq = ++me.seq;
    // Publish argument words first, then the seq that makes them live.
    // seq_cst on the seq store/loads so a helper whose LL followed our
    // announce in real time is guaranteed to observe it.
    a.kind.store(d.kind, std::memory_order_relaxed);
    a.arg.store(d.arg, std::memory_order_relaxed);
    // mwllsc-ordering: seq_cst(op announce: a helper whose LL follows
    // this store in real time is guaranteed to observe the seq, which is
    // what makes help_all exhaustive and apply() wait-free)
    a.seq.store(seq, std::memory_order_seq_cst);
    hook("announced", p);
    trace_.emit(obs::EventKind::kAnnounce, p, seq, static_cast<std::uint32_t>(d.kind));
    std::uint64_t* buf = me.scratch.data();
    std::uint64_t attempts = 0;
    for (;;) {
      ++attempts;
      obj_->ll(p, buf);
      if (buf[applied_ix(p)] == seq) break;  // a winner applied us
      hook("linked", p);
      const std::uint32_t applied = help_all(buf);
      trace_.emit(obs::EventKind::kHelpAll, p, seq, applied);
      if (obj_->sc(p, buf)) break;  // we won; our own op was in help_all
      hook("sc_failed", p);
      assert(attempts < kMaxAttempts && "help-all attempt bound violated");
    }
    trace_.emit(obs::EventKind::kApplyCommit, p, seq,
                static_cast<std::uint32_t>(attempts));
    me.attempts.store(me.attempts.load(std::memory_order_relaxed) + attempts,
                      std::memory_order_relaxed);
    if (attempts > me.max_attempts.load(std::memory_order_relaxed))
      me.max_attempts.store(attempts, std::memory_order_relaxed);
    return buf[result_ix(p)];
  }

  /// Reads the current state (one LL — an atomic snapshot).
  T read(std::uint32_t p) {
    assert(p < n_);
    obj_->ll(p, priv_[p].scratch.data());
    T state;
    std::memcpy(&state, priv_[p].scratch.data(), sizeof(T));
    return state;
  }

  /// Total LL/SC rounds across all applies (relaxed per-process sum).
  std::uint64_t total_attempts() const {
    std::uint64_t t = 0;
    for (std::uint32_t p = 0; p < n_; ++p)
      t += priv_[p].attempts.load(std::memory_order_relaxed);
    return t;
  }

  /// Worst single apply observed so far; the tests gate it <= kMaxAttempts.
  std::uint64_t max_attempts() const {
    std::uint64_t m = 0;
    for (std::uint32_t p = 0; p < n_; ++p) {
      const std::uint64_t v = priv_[p].max_attempts.load(std::memory_order_relaxed);
      if (v > m) m = v;
    }
    return m;
  }

  core::IMwLLSC& substrate() { return *obj_; }
  std::uint32_t procs() const { return n_; }
  std::uint32_t words() const { return words_; }

  void set_step_hook(StepHook h, void* ctx) {
    hook_ = h;
    hook_ctx_ = ctx;
  }

  /// Binds both the construction and its substrate to the sink under one
  /// variable id: apps events (announce/help_all/apply_commit) interleave
  /// with the substrate's LL/SC events in each process's ring, which is
  /// exactly the per-op causality the Perfetto view shows.
  void set_trace(obs::TraceSink* sink, std::uint32_t var) {
    trace_.bind(sink, var);
    obj_->set_trace(sink, var);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> kind{0};
    std::atomic<std::uint64_t> arg{0};
  };

  struct alignas(64) Priv {
    std::vector<std::uint64_t> scratch;
    std::uint64_t seq = 0;
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> max_attempts{0};
  };

  std::size_t applied_ix(std::uint32_t q) const {
    return payload_words_ + 2 * static_cast<std::size_t>(q);
  }
  std::size_t result_ix(std::uint32_t q) const { return applied_ix(q) + 1; }

  /// Applies every announced pending op to the snapshot in `buf`. Only a
  /// committed SC makes any of it real, so a stale view here is harmless:
  /// announce seqs advance only after the op is applied in the installed
  /// chain, hence a slot that changes under us implies a successful SC
  /// after our LL — our own SC is already doomed to fail semantically.
  std::uint32_t help_all(std::uint64_t* buf) {
    T state;
    std::memcpy(&state, buf, sizeof(T));
    std::uint32_t applied = 0;
    for (std::uint32_t q = 0; q < n_; ++q) {
      Slot& s = slots_[q];
      // mwllsc-ordering: seq_cst(helper side of the op announce: ordered
      // after the announcer's seq store, so an op announced before our LL
      // is never skipped)
      const std::uint64_t seq = s.seq.load(std::memory_order_seq_cst);
      if (seq != buf[applied_ix(q)] + 1) continue;  // nothing pending here
      OpDesc d{s.kind.load(std::memory_order_relaxed),
               s.arg.load(std::memory_order_relaxed)};
      // mwllsc-ordering: seq_cst(seqlock-style re-read: an unchanged seq
      // proves kind/arg above were not torn by a re-announce; a changed
      // seq means a later SC committed and ours is doomed anyway)
      if (s.seq.load(std::memory_order_seq_cst) != seq) continue;  // doomed
      buf[result_ix(q)] = op_(state, d);
      buf[applied_ix(q)] = seq;
      ++applied;
    }
    std::memcpy(buf, &state, sizeof(T));
    return applied;
  }

  void hook(const char* point, std::uint32_t pid) {
    if (hook_) hook_(hook_ctx_, point, pid);
  }

  std::uint32_t n_;
  std::uint32_t payload_words_;
  std::uint32_t words_;
  std::unique_ptr<core::IMwLLSC> obj_;
  std::unique_ptr<Slot[]> slots_;
  std::unique_ptr<Priv[]> priv_;
  obs::TraceHandle trace_;
  StepHook hook_ = nullptr;
  void* hook_ctx_ = nullptr;
  const Op op_{};
};

}  // namespace mwllsc::apps
