// Anderson–Moir-style multiword LL/SC baseline: same announce/help
// *schedule* as the paper's algorithm (core/mwllsc.hpp), but helping copies
// the value instead of exchanging buffer ownership. Each potential helper q
// needs a private W-word handoff slot per helpee p that only q writes and
// only p reads — the O(N^2 W) handoff matrix the paper's ownership exchange
// eliminates. Time also pays: every LL keeps a private copy of the value it
// read (so a later successful SC can donate it), and every help is an O(W)
// copy instead of an O(1) exchange.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/llsc.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace mwllsc::baseline {

template <class LLSC>
class AmLLSC {
 public:
  AmLLSC(std::uint32_t nprocs, std::uint32_t words)
      : n_(nprocs),
        w_(words),
        nbufs_(nprocs + 1),
        x_(nprocs, pack_x(0, nprocs)),
        buf_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(
            nprocs + 1) * words]),
        handoff_(new std::uint64_t[static_cast<std::size_t>(nprocs) *
                                   nprocs * words]),
        announce_(new AnnounceSlot[nprocs]),
        priv_(new Priv[nprocs]),
        lastval_(new std::uint64_t[static_cast<std::size_t>(nprocs) * words]),
        stats_(nprocs) {
    assert(nprocs >= 1 && nprocs <= kMaxProcs);
    assert(words >= 1);
    for (std::size_t i = 0; i < static_cast<std::size_t>(nbufs_) * w_; ++i) {
      buf_[i].store(0, std::memory_order_relaxed);
    }
    for (std::uint32_t p = 0; p < n_; ++p) {
      priv_[p].spare = p;
      announce_[p].a.store(pack_a(kIdle, 0, 0), std::memory_order_relaxed);
    }
  }

  void ll(std::uint32_t p, std::uint64_t* out) {
    assert(p < n_);
    Priv& me = priv_[p];
    me.seq = (me.seq + 1) & kSeqMask;  // the announce word holds 44 bits
    // mwllsc-ordering: seq_cst(announce/help handshake of the copy-helping
    // baseline: the store precedes every later winner's pre-SC scan in the
    // total order, so a winner either sees us or linked before we announced)
    announce_[p].a.store(pack_a(kWaiting, 0, me.seq),
                         std::memory_order_seq_cst);
    trace_.emit(obs::EventKind::kLlStart, p, me.seq);
    for (;;) {
      const std::uint64_t x = x_.ll(p);
      const std::uint32_t b = buf_of_x(x);
      copy_from_bufs(b, out);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (x_.vl(p)) {
        // mwllsc-ordering: seq_cst(the withdraw races a helper's kHelped
        // CAS on this slot; the total order picks exactly one)
        std::uint64_t expect = pack_a(kWaiting, 0, me.seq);
        if (!announce_[p].a.compare_exchange_strong(
                expect, pack_a(kIdle, 0, me.seq),
                std::memory_order_seq_cst)) {
          stats_.at(p).bump(stats_.at(p).ll_helped);  // donated but unused
          trace_.emit(obs::EventKind::kLlHelped, p, me.seq);
        }
        // Keep the private copy a future successful SC donates from.
        for (std::uint32_t i = 0; i < w_; ++i) lastrow(p)[i] = out[i];
        me.ll_buf = b;
        me.link_valid = true;
        stats_.at(p).bump(stats_.at(p).ll_ops);
        trace_.emit(obs::EventKind::kLlFast, p, me.seq, b);
        return;
      }
      // mwllsc-ordering: seq_cst(re-read of our slot after a failed VL:
      // the SC that broke the link sits before this load in the total
      // order, so its helper's donation — if any — is visible here)
      const std::uint64_t a = announce_[p].a.load(std::memory_order_seq_cst);
      if (state_of_a(a) == kHelped && seq_of_a(a) == me.seq) {
        // The helper copied a consistent value into its handoff row for us;
        // it will not be rewritten until we announce again.
        const std::uint32_t q = donor_of_a(a);
        const std::uint64_t* h = handoff_row(q, p);
        for (std::uint32_t i = 0; i < w_; ++i) out[i] = h[i];
        me.link_valid = false;
        auto& c = stats_.at(p);
        c.bump(c.ll_helped);
        c.bump(c.ll_used_helped_value);
        c.bump(c.ll_ops);
        trace_.emit(obs::EventKind::kLlRescue, p, me.seq, q);
        return;
      }
      trace_.emit(obs::EventKind::kLlRetry, p, me.seq);
    }
  }

  bool sc(std::uint32_t p, const std::uint64_t* v) {
    assert(p < n_);
    Priv& me = priv_[p];
    auto& c = stats_.at(p);
    c.bump(c.sc_ops);
    trace_.emit(obs::EventKind::kScAttempt, p, me.seq,
                me.link_valid ? 1 : 0);
    if (!me.link_valid) {
      trace_.emit(obs::EventKind::kScFail, p, me.seq);
      return false;
    }
    me.link_valid = false;
    copy_to_bufs(me.spare, v);
    std::atomic_thread_fence(std::memory_order_release);
    const std::uint64_t t = x_.linked_tag(p);
    const std::uint32_t target = static_cast<std::uint32_t>((t + 1) % n_);
    // mwllsc-ordering: seq_cst(the pre-SC probe pairs with the announce
    // store: a probe after the announce cannot miss kWaiting)
    std::uint64_t seen = announce_[target].a.load(std::memory_order_seq_cst);
    if (!x_.sc(p, pack_x(p, me.spare))) {
      trace_.emit(obs::EventKind::kScFail, p, me.seq);
      return false;
    }
    c.bump(c.sc_success);
    trace_.emit(obs::EventKind::kScCommit, p, t + 1);
    me.spare = me.ll_buf;  // retire the previously-current buffer
    c.bump(c.bank_writes);
    trace_.emit(obs::EventKind::kBankWrite, p, t + 1, me.spare);
    if (target != p && state_of_a(seen) == kWaiting) {
      // Copy-based help: hand over the value we read at our LL (current
      // until our SC an instant ago) through our handoff row. O(W).
      std::uint64_t* h = handoff_row(p, target);
      const std::uint64_t* src = lastrow(p);
      for (std::uint32_t i = 0; i < w_; ++i) h[i] = src[i];
      const std::uint64_t donated = pack_a(kHelped, p, seq_of_a(seen));
      // mwllsc-ordering: seq_cst(the help install races the owner's
      // withdraw CAS; exactly one CAS on the slot wins the handoff)
      if (announce_[target].a.compare_exchange_strong(
              seen, donated, std::memory_order_seq_cst)) {
        c.bump(c.helps_given);
        trace_.emit(obs::EventKind::kHelpInstall, p, seq_of_a(donated),
                    target);
      }
    }
    return true;
  }

  bool vl(std::uint32_t p) {
    assert(p < n_);
    auto& c = stats_.at(p);
    c.bump(c.vl_ops);
    if (!priv_[p].link_valid) return false;
    return x_.vl(p);
  }

  std::uint32_t words() const { return w_; }

  core::OpStatsSnapshot stats() const { return stats_.snapshot(); }

  void set_trace(obs::TraceSink* sink, std::uint32_t var) {
    trace_.bind(sink, var);
    if (sink) sink->describe_var(var, w_, "am");
  }

  util::Footprint footprint() const {
    util::Footprint f;
    f.add("X descriptor (1-word LL/SC)", x_.shared_bytes());
    f.add("value buffers ((N+1) x W words)",
          static_cast<std::size_t>(nbufs_) * w_ * sizeof(std::uint64_t));
    f.add("handoff matrix (N^2 x W words)",
          static_cast<std::size_t>(n_) * n_ * w_ * sizeof(std::uint64_t));
    f.add("announce/help slots (N)", n_ * sizeof(AnnounceSlot));
    f.add("per-process state (private)",
          n_ * sizeof(Priv) +
              static_cast<std::size_t>(n_) * w_ * sizeof(std::uint64_t) +
              x_.private_bytes() + stats_.bytes(),
          util::Footprint::Ownership::kPerProcess);
    return f;
  }

 private:
  static constexpr std::uint32_t kBufBits = 18;
  static constexpr std::uint32_t kPidBits = 14;
  static constexpr std::uint32_t kMaxProcs = 1u << kPidBits;
  static_assert(LLSC::kValueBits >= kBufBits + kPidBits,
                "engine value too narrow for the <pid, buf> descriptor");

  static std::uint64_t pack_x(std::uint32_t pid, std::uint32_t buf) {
    return (static_cast<std::uint64_t>(pid) << kBufBits) | buf;
  }
  static std::uint32_t buf_of_x(std::uint64_t x) {
    return static_cast<std::uint32_t>(x & ((1u << kBufBits) - 1));
  }

  // Announce word: state(2) | donor pid(18) | seq(44).
  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::uint64_t kWaiting = 1;
  static constexpr std::uint64_t kHelped = 2;

  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << 44) - 1;

  static std::uint64_t pack_a(std::uint64_t state, std::uint32_t donor,
                              std::uint64_t seq) {
    return (seq << 20) | (static_cast<std::uint64_t>(donor) << 2) | state;
  }
  static std::uint64_t state_of_a(std::uint64_t a) { return a & 3; }
  static std::uint32_t donor_of_a(std::uint64_t a) {
    return static_cast<std::uint32_t>((a >> 2) & ((1u << kBufBits) - 1));
  }
  static std::uint64_t seq_of_a(std::uint64_t a) { return a >> 20; }

  struct alignas(64) AnnounceSlot {
    std::atomic<std::uint64_t> a;
  };

  struct alignas(64) Priv {
    std::uint32_t spare = 0;
    std::uint32_t ll_buf = 0;
    std::uint64_t seq = 0;
    bool link_valid = false;
  };

  void copy_from_bufs(std::uint32_t b, std::uint64_t* out) const {
    const std::atomic<std::uint64_t>* row =
        buf_.get() + static_cast<std::size_t>(b) * w_;
    for (std::uint32_t i = 0; i < w_; ++i) {
      out[i] = row[i].load(std::memory_order_relaxed);
    }
  }

  void copy_to_bufs(std::uint32_t b, const std::uint64_t* v) {
    std::atomic<std::uint64_t>* row =
        buf_.get() + static_cast<std::size_t>(b) * w_;
    for (std::uint32_t i = 0; i < w_; ++i) {
      row[i].store(v[i], std::memory_order_relaxed);
    }
  }

  std::uint64_t* handoff_row(std::uint32_t helper, std::uint32_t helpee) {
    return handoff_.get() +
           (static_cast<std::size_t>(helper) * n_ + helpee) * w_;
  }

  std::uint64_t* lastrow(std::uint32_t p) {
    return lastval_.get() + static_cast<std::size_t>(p) * w_;
  }

  const std::uint32_t n_;
  const std::uint32_t w_;
  const std::uint32_t nbufs_;
  LLSC x_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buf_;
  std::unique_ptr<std::uint64_t[]> handoff_;
  std::unique_ptr<AnnounceSlot[]> announce_;
  std::unique_ptr<Priv[]> priv_;
  std::unique_ptr<std::uint64_t[]> lastval_;
  util::OpStatsArray stats_;
  obs::TraceHandle trace_;
};

}  // namespace mwllsc::baseline
