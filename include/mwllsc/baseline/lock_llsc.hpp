// Blocking baseline: one mutex around a W-word value plus a version
// counter for the link semantics. Simple and sequentially fast, but a
// stalled holder blocks every other process — the convoying/fault-
// tolerance failure mode the paper's introduction argues against.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace.hpp"
#include "util/stats.hpp"
#include "util/thread_safety.hpp"

namespace mwllsc::baseline {

class LockLLSC {
 public:
  LockLLSC(std::uint32_t nprocs, std::uint32_t words)
      : n_(nprocs),
        w_(words),
        value_(words, 0),
        linked_(new Linked[nprocs]),
        stats_(nprocs) {
    assert(nprocs >= 1);
    assert(words >= 1);
    for (std::uint32_t p = 0; p < nprocs; ++p) {
      linked_[p].version = kUnlinked;
    }
  }

  void ll(std::uint32_t p, std::uint64_t* out) {
    assert(p < n_);
    trace_.emit(obs::EventKind::kLlStart, p);
    std::uint64_t linked = 0;
    {
      util::MutexLock g(mu_);
      for (std::uint32_t i = 0; i < w_; ++i) out[i] = value_[i];
      linked_[p].version = version_;
      linked = version_;
    }
    stats_.at(p).bump(stats_.at(p).ll_ops);
    trace_.emit(obs::EventKind::kLlFast, p, linked);
  }

  bool sc(std::uint32_t p, const std::uint64_t* v) {
    assert(p < n_);
    auto& c = stats_.at(p);
    c.bump(c.sc_ops);
    trace_.emit(obs::EventKind::kScAttempt, p);
    bool ok = false;
    std::uint64_t newv = 0;
    {
      util::MutexLock g(mu_);
      if (linked_[p].version == version_) {
        for (std::uint32_t i = 0; i < w_; ++i) value_[i] = v[i];
        ++version_;
        newv = version_;
        ok = true;
      }
      linked_[p].version = kUnlinked;  // the link is consumed either way
    }
    if (ok) c.bump(c.sc_success);
    trace_.emit(ok ? obs::EventKind::kScCommit : obs::EventKind::kScFail, p,
                newv);
    return ok;
  }

  bool vl(std::uint32_t p) {
    assert(p < n_);
    auto& c = stats_.at(p);
    c.bump(c.vl_ops);
    util::MutexLock g(mu_);
    return linked_[p].version == version_;
  }

  std::uint32_t words() const { return w_; }

  core::OpStatsSnapshot stats() const { return stats_.snapshot(); }

  void set_trace(obs::TraceSink* sink, std::uint32_t var) {
    trace_.bind(sink, var);
    if (sink) sink->describe_var(var, w_, "lock");
  }

  util::Footprint footprint() const {
    util::Footprint f;
    f.add("value (W words)", w_ * sizeof(std::uint64_t));
    f.add("mutex + version", sizeof(mu_) + sizeof(version_));
    f.add("per-process state (private)",
          n_ * sizeof(Linked) + stats_.bytes(),
          util::Footprint::Ownership::kPerProcess);
    return f;
  }

 private:
  static constexpr std::uint64_t kUnlinked = ~std::uint64_t{0};

  struct alignas(64) Linked {
    std::uint64_t version;
  };

  const std::uint32_t n_;
  const std::uint32_t w_;
  util::Mutex mu_;
  std::uint64_t version_ MWLLSC_GUARDED_BY(mu_) = 0;
  std::vector<std::uint64_t> value_ MWLLSC_GUARDED_BY(mu_);
  std::unique_ptr<Linked[]> linked_ MWLLSC_PT_GUARDED_BY(mu_);
  util::OpStatsArray stats_;
  obs::TraceHandle trace_;
};

}  // namespace mwllsc::baseline
