// Lock-free retry strawman: the obvious buffer-swing construction with no
// helping at all. SC is a single 1-word SC on the descriptor; LL retries
// its copy until a validation passes. Writers are lock-free and fast —
// but a reader's copy loop can be invalidated forever under a write storm
// (reader starvation), which is exactly the gap between lock-freedom and
// the paper's wait-freedom (experiments E8/E9).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/llsc.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace mwllsc::baseline {

template <class LLSC>
class RetryLLSC {
 public:
  RetryLLSC(std::uint32_t nprocs, std::uint32_t words)
      : n_(nprocs),
        w_(words),
        nbufs_(nprocs + 1),
        x_(nprocs, pack_x(0, nprocs)),
        buf_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(
            nprocs + 1) * words]),
        priv_(new Priv[nprocs]),
        stats_(nprocs) {
    assert(nprocs >= 1 && nprocs <= kMaxProcs);
    assert(words >= 1);
    for (std::size_t i = 0; i < static_cast<std::size_t>(nbufs_) * w_; ++i) {
      buf_[i].store(0, std::memory_order_relaxed);
    }
    for (std::uint32_t p = 0; p < n_; ++p) priv_[p].spare = p;
  }

  void ll(std::uint32_t p, std::uint64_t* out) {
    assert(p < n_);
    Priv& me = priv_[p];
    trace_.emit(obs::EventKind::kLlStart, p);
    for (;;) {  // unbounded: lock-free, not wait-free
      const std::uint64_t x = x_.ll(p);
      const std::uint32_t b = buf_of_x(x);
      copy_out(b, out);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (x_.vl(p)) {
        me.ll_buf = b;
        me.link_valid = true;
        stats_.at(p).bump(stats_.at(p).ll_ops);
        trace_.emit(obs::EventKind::kLlFast, p, 0, b);
        return;
      }
      trace_.emit(obs::EventKind::kLlRetry, p);
    }
  }

  bool sc(std::uint32_t p, const std::uint64_t* v) {
    assert(p < n_);
    Priv& me = priv_[p];
    auto& c = stats_.at(p);
    c.bump(c.sc_ops);
    trace_.emit(obs::EventKind::kScAttempt, p, 0, me.link_valid ? 1 : 0);
    if (!me.link_valid) {
      trace_.emit(obs::EventKind::kScFail, p);
      return false;
    }
    me.link_valid = false;
    copy_in(me.spare, v);
    std::atomic_thread_fence(std::memory_order_release);
    if (!x_.sc(p, pack_x(p, me.spare))) {
      trace_.emit(obs::EventKind::kScFail, p);
      return false;
    }
    c.bump(c.sc_success);
    trace_.emit(obs::EventKind::kScCommit, p);
    me.spare = me.ll_buf;
    trace_.emit(obs::EventKind::kBankWrite, p, 0, me.spare);
    return true;
  }

  bool vl(std::uint32_t p) {
    assert(p < n_);
    auto& c = stats_.at(p);
    c.bump(c.vl_ops);
    if (!priv_[p].link_valid) return false;
    return x_.vl(p);
  }

  std::uint32_t words() const { return w_; }

  core::OpStatsSnapshot stats() const { return stats_.snapshot(); }

  void set_trace(obs::TraceSink* sink, std::uint32_t var) {
    trace_.bind(sink, var);
    if (sink) sink->describe_var(var, w_, "retry");
  }

  util::Footprint footprint() const {
    util::Footprint f;
    f.add("X descriptor (1-word LL/SC)", x_.shared_bytes());
    f.add("value buffers ((N+1) x W words)",
          static_cast<std::size_t>(nbufs_) * w_ * sizeof(std::uint64_t));
    f.add("per-process state (private)",
          n_ * sizeof(Priv) + x_.private_bytes() + stats_.bytes(),
          util::Footprint::Ownership::kPerProcess);
    return f;
  }

 private:
  static constexpr std::uint32_t kBufBits = 18;
  static constexpr std::uint32_t kPidBits = 14;
  static constexpr std::uint32_t kMaxProcs = 1u << kPidBits;
  static_assert(LLSC::kValueBits >= kBufBits + kPidBits,
                "engine value too narrow for the <pid, buf> descriptor");

  static std::uint64_t pack_x(std::uint32_t pid, std::uint32_t buf) {
    return (static_cast<std::uint64_t>(pid) << kBufBits) | buf;
  }
  static std::uint32_t buf_of_x(std::uint64_t x) {
    return static_cast<std::uint32_t>(x & ((1u << kBufBits) - 1));
  }

  struct alignas(64) Priv {
    std::uint32_t spare = 0;
    std::uint32_t ll_buf = 0;
    bool link_valid = false;
  };

  void copy_out(std::uint32_t b, std::uint64_t* out) const {
    const std::atomic<std::uint64_t>* row =
        buf_.get() + static_cast<std::size_t>(b) * w_;
    for (std::uint32_t i = 0; i < w_; ++i) {
      out[i] = row[i].load(std::memory_order_relaxed);
    }
  }

  void copy_in(std::uint32_t b, const std::uint64_t* v) {
    std::atomic<std::uint64_t>* row =
        buf_.get() + static_cast<std::size_t>(b) * w_;
    for (std::uint32_t i = 0; i < w_; ++i) {
      row[i].store(v[i], std::memory_order_relaxed);
    }
  }

  const std::uint32_t n_;
  const std::uint32_t w_;
  const std::uint32_t nbufs_;
  LLSC x_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buf_;
  std::unique_ptr<Priv[]> priv_;
  util::OpStatsArray stats_;
  obs::TraceHandle trace_;
};

}  // namespace mwllsc::baseline
