// Type-erased facade over the multiword LL/SC implementations, in the
// spirit of Brown, Ellen & Ruppert's "pragmatic primitives": a uniform
// LL/SC/VL contract (failures are semantic — an SC fails iff another
// successful SC intervened since the caller's LL — never spurious) so the
// benches and applications can swap substrates behind one interface.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace mwllsc::core {

class IMwLLSC {
 public:
  virtual ~IMwLLSC() = default;

  /// Copies the current W-word value into `out` and links process `pid`.
  virtual void ll(std::uint32_t pid, std::uint64_t* out) = 0;

  /// Installs `in` iff no successful SC intervened since pid's last LL.
  /// Consumes the link either way.
  virtual bool sc(std::uint32_t pid, const std::uint64_t* in) = 0;

  /// True iff pid's link is still current. Does not consume the link.
  virtual bool vl(std::uint32_t pid) = 0;

  virtual std::uint32_t words() const = 0;
  virtual OpStatsSnapshot stats() const = 0;
  virtual util::Footprint footprint() const = 0;

  /// Binds this variable to a trace sink under id `var` (obs/trace.hpp).
  /// No-op in MWLLSC_TRACE-off builds and for untraced implementations.
  virtual void set_trace(obs::TraceSink* sink, std::uint32_t var) {
    (void)sink;
    (void)var;
  }
};

/// Adapts any concrete implementation with the same member signatures.
template <class T>
class MwLLSCAdapter final : public IMwLLSC {
 public:
  MwLLSCAdapter(std::uint32_t nprocs, std::uint32_t words)
      : impl_(nprocs, words) {}

  void ll(std::uint32_t pid, std::uint64_t* out) override {
    impl_.ll(pid, out);
  }
  bool sc(std::uint32_t pid, const std::uint64_t* in) override {
    return impl_.sc(pid, in);
  }
  bool vl(std::uint32_t pid) override { return impl_.vl(pid); }
  std::uint32_t words() const override { return impl_.words(); }
  OpStatsSnapshot stats() const override { return impl_.stats(); }
  util::Footprint footprint() const override { return impl_.footprint(); }
  void set_trace(obs::TraceSink* sink, std::uint32_t var) override {
    impl_.set_trace(sink, var);
  }

  T& impl() { return impl_; }

 private:
  T impl_;
};

/// Named constructor: make(nprocs, words) yields a fresh object.
struct MwLLSCFactory {
  std::string name;
  std::function<std::unique_ptr<IMwLLSC>(std::uint32_t, std::uint32_t)> make;
};

}  // namespace mwllsc::core
