// Single-word LL/SC building blocks ("the hardware primitive").
//
// Real hardware LL/SC is not exposed portably, so both engines emulate an
// N-process single-word LL/SC variable with CAS on a (value, sequence-tag)
// pair; the tag advances on every successful SC, which makes SC failures
// semantic (an SC fails iff another SC succeeded since the caller's LL) and
// defeats ABA up to tag wrap-around:
//
//   * Dw128LLSC   — 128-bit CAS (x86 cmpxchg16b via libatomic): full 64-bit
//                   values and a 64-bit tag, i.e. no practical ABA bound.
//   * Packed64LLSC — single 64-bit CAS holding a 32-bit value and a 32-bit
//                   tag: cheaper hardware op, wraps after 2^32 SCs. The
//                   ablation engine.
//
// Operating envelope (tag wrap). The ABA guarantee holds for at most
// kMaxTag = 2^kTagBits - 1 successful SCs per variable; past that the tag
// wraps to 0 and a process parked across the full wrap cycle could see a
// stale link validate ("spurious" SC/VL success). For Dw128LLSC that is
// 2^64 SCs — over 580 years at 10^9 SCs/s, no practical bound. For
// Packed64LLSC it is 2^32 SCs — minutes under saturation — so Packed64 is
// an ablation/short-run engine: long-running deployments must either use
// Dw128LLSC or retire/reconstruct the variable (epoch reset) before the
// tag budget is spent. One word inside the envelope is also reserved: the
// all-ones (value == kValueMask, tag == kMaxTag) packed word is the
// kUnlinked sentinel, and installing it would make the next LL silently
// drop its link (spurious SC/VL failure). Debug builds assert on both the
// wrap and the sentinel; release builds degrade silently (tag arithmetic
// is masked to kTagBits, so behavior stays defined — only the LL/SC
// guarantees lapse). The `initial_tag` constructor parameter exists so
// tests can exercise the boundary without 2^32 warm-up SCs.
//
// Per-process link state (the word observed at the last LL) is private to
// the linking process and padded to its own cache line.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace mwllsc::llsc {

namespace detail {

/// Shared implementation: Word is the CAS granule, split into the low
/// kValueBits of value and the remaining high bits of sequence tag.
template <typename Word, unsigned kValueBitsParam>
class SeqTagLLSC {
 public:
  static constexpr unsigned kValueBits = kValueBitsParam;
  static constexpr unsigned kTagBits = sizeof(Word) * 8 - kValueBitsParam;
  /// Largest tag value: the engine's ABA budget is kMaxTag successful SCs
  /// (see the operating-envelope note in the header comment).
  static constexpr std::uint64_t kMaxTag =
      kTagBits >= 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << kTagBits) - 1;

  /// `initial_tag` pre-ages the variable for wrap-boundary tests; normal
  /// construction starts the tag at 0.
  explicit SeqTagLLSC(std::uint32_t nprocs, std::uint64_t initial = 0,
                      std::uint64_t initial_tag = 0)
      : links_(new Link[nprocs]), n_(nprocs) {
    assert(nprocs >= 1);
    assert(initial_tag <= kMaxTag);
    // All-ones is the kUnlinked sentinel; starting there is pathological
    // (it needs both the maximum tag and the maximum value).
    assert(pack(initial, initial_tag) != kUnlinked);
    cell_.w.store(pack(initial, initial_tag), std::memory_order_relaxed);
    for (std::uint32_t p = 0; p < nprocs; ++p) {
      links_[p].seen = kUnlinked;
    }
  }

  /// Load-linked: returns the current value and links p to it. A later
  /// sc/vl by p succeeds iff no successful SC (by anyone) intervened.
  std::uint64_t ll(std::uint32_t p) {
    const Word w = cell_.w.load(std::memory_order_acquire);
    links_[p].seen = w;
    return value_of(w);
  }

  /// Store-conditional: succeeds iff the variable still carries the exact
  /// (value, tag) pair p linked to; installs v with the next tag.
  bool sc(std::uint32_t p, std::uint64_t v) {
    Word expected = links_[p].seen;
    links_[p].seen = kUnlinked;  // the link is consumed either way
    if (expected == kUnlinked) return false;
    // Wrap detection: installing past kMaxTag re-enables ABA (operating
    // envelope in the header comment). Masked so release builds stay
    // defined; debug builds refuse to cross silently.
    const std::uint64_t next_tag = (tag_of(expected) + 1) & kMaxTag;
    assert(next_tag != 0 &&
           "SeqTagLLSC tag wrapped: ABA budget exhausted — use Dw128LLSC "
           "or epoch-reset the variable (see llsc.hpp operating envelope)");
    const Word desired = pack(v, next_tag);
    // The all-ones word is the kUnlinked sentinel: installing it would
    // make the next LL record "no link" and fail spuriously.
    assert(desired != kUnlinked &&
           "SeqTagLLSC would install the kUnlinked sentinel (all-ones "
           "value at the maximum tag — see llsc.hpp operating envelope)");
    // mwllsc-ordering: seq_cst(the SC CAS is the protocol's linearization
    // point: every successful SC is globally ordered, which the announce
    // sweep and the tag arithmetic in core/mwllsc.hpp both assume)
    return cell_.w.compare_exchange_strong(expected, desired,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed);
  }

  /// Validate: true iff p's link is still current. Does not consume it.
  bool vl(std::uint32_t p) const {
    const Word w = links_[p].seen;
    if (w == kUnlinked) return false;
    return cell_.w.load(std::memory_order_acquire) == w;
  }

  /// Unlinked read of the current value.
  std::uint64_t peek() const {
    return value_of(cell_.w.load(std::memory_order_acquire));
  }

  /// Tag of the word p linked to (for deterministic help scheduling).
  std::uint64_t linked_tag(std::uint32_t p) const {
    return tag_of(links_[p].seen);
  }

  std::uint64_t current_tag() const {
    return tag_of(cell_.w.load(std::memory_order_acquire));
  }

  std::size_t shared_bytes() const { return sizeof(Cell); }
  std::size_t private_bytes() const { return n_ * sizeof(Link); }

 private:
  static constexpr Word kValueMask =
      kValueBitsParam == sizeof(Word) * 8
          ? static_cast<Word>(~Word{0})
          : (Word{1} << kValueBitsParam) - 1;
  // All-ones is unreachable: the tag would have to hit its maximum, which
  // takes 2^kTagBits successful SCs.
  static constexpr Word kUnlinked = static_cast<Word>(~Word{0});

  static Word pack(std::uint64_t v, std::uint64_t tag) {
    assert((static_cast<Word>(v) & ~kValueMask) == 0);
    return (static_cast<Word>(tag) << kValueBitsParam) |
           (static_cast<Word>(v) & kValueMask);
  }
  static std::uint64_t value_of(Word w) {
    return static_cast<std::uint64_t>(w & kValueMask);
  }
  static std::uint64_t tag_of(Word w) {
    return static_cast<std::uint64_t>(w >> kValueBitsParam);
  }

  // A full line to itself: the CAS-hot variable must not share a cache
  // line with the read-mostly members (or the enclosing object's fields).
  struct alignas(64) Cell {
    std::atomic<Word> w;
  };
  struct alignas(64) Link {
    Word seen;  // only process p reads/writes links_[p]
  };

  Cell cell_;
  std::unique_ptr<Link[]> links_;
  std::uint32_t n_;
};

}  // namespace detail

using Dw128LLSC = detail::SeqTagLLSC<unsigned __int128, 64>;
using Packed64LLSC = detail::SeqTagLLSC<std::uint64_t, 32>;

}  // namespace mwllsc::llsc
