// The paper's wait-free N-process W-word LL/SC variable, built from a
// single-word LL/SC building block (core/llsc.hpp) — full protocol: LL
// completes in at most 4W+12 memory accesses regardless of N (Theorem 1's
// O(W) bound), SC in O(W), VL in O(1), with O(NW) shared space.
//
// Layout. The W-word value always lives in one of 2N+R+1 buffers, where
// R = max(2, P) and P is N rounded up to a power of two. Process p owns a
// *spare* it writes its next SC value into and an *exchange* buffer it
// offers through its announce slot (and reuses as help-copy scratch). R
// buffers rest in the global *retirement ring*; the remaining buffer is
// current. The 1-word LL/SC variable X holds the descriptor <pid, buf>;
// its sequence tag is the abstract version: tag T's value is whatever the
// T-th successful SC installed.
//
// Fast path with aged validation. LL(p) announces, links X (tag T, buffer
// b), copies b, then re-reads X's tag: the snapshot is accepted if the tag
// advanced by AT MOST P. This is safe because retired buffers pass through
// the ring and are only reused once at least R >= P further SCs have
// succeeded: a buffer current at tag T is not rewritten until the global
// tag exceeds T+P, and any rewrite concurrent with the copy forces the
// validation to observe drift > P and reject. A snapshot accepted with
// drift in [1, P] is still exactly version T's value and linearizes at the
// link instant; only drift 0 leaves the SC link intact (link_valid).
//
// Help path, pre-SC. If validation fails (drift >= P+1), at least P
// successful SCs linked X *after* p's announce. The winner installing tag
// U probes announce slot U mod P before its SC, so those P consecutive
// winners sweep every slot including p's; a prober that finds p WAITING
// copies the current buffer into its own exchange buffer, re-validates its
// link (strict: the copy is untorn and the value is current at an instant
// inside p's LL — the prober wins its SC, so its link held throughout),
// and CASes A[p] from the exact WAITING word to <HELPED, copy, seq>,
// taking p's offered exchange buffer in return. Because the mark lands
// before the helper's SC installs, it is complete before p's validation
// can fail — so a failed validation finds HELPED already posted, and LL
// finishes by copying the donated buffer: announce (1) + link (1) + copy
// (W) + validate (1) + check A[p] (1) + donated copy (W) = 2W+4 <= 4W+12
// accesses, with no retry loop at all. (A defensive retry remains for
// robustness; tests assert it never fires.)
//
// Retirement ring. A successful SC retires the previously-current buffer
// into ring cell (T+1) mod R — <buf, tag T+1> — taking the cell's old
// buffer (aged by >= R-1 intervening SCs) as its new spare. Writers that
// stall so long they get lapped (the cell's tag moved ahead of theirs)
// keep their own retiree, which the lapping itself aged. All tags in a
// cell are congruent mod R, the CAS retries at most N times (each failure
// is a distinct slower winner resolving), and exactly one ring resolution
// — the "bank write" of invariant I2 — happens per successful SC.
//
// Linearization. A fast-path LL linearizes at its X link; a helped LL at
// the donor's help-validation instant (inside p's LL window). A helped or
// drifted LL returns with its link broken: VL reports false and SC fails
// in O(1), which is semantically exact — a successful SC intervened.
//
// Memory ordering. Buffer words are relaxed atomics; both the reader copy
// and the helper copy are validated seqlock-style (acquire fence before
// the tag re-check / link re-validation); donated contents are published
// by the helper's seq_cst mark CAS and need no reader-side validation —
// ownership transfer makes the buffer private to the reader. ABA on the
// announce word is bounded by the 44-bit seq; ring tags carry 46 bits.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/llsc.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace mwllsc::core {

template <class LLSC>
class MwLLSC {
 public:
  /// Test seam: called at named protocol points when installed (never from
  /// the default path — the pointer check is the only overhead).
  using StepHook = void (*)(void* ctx, const char* point, std::uint32_t pid);

  MwLLSC(std::uint32_t nprocs, std::uint32_t words)
      : n_(nprocs),
        w_(words),
        p2_(next_pow2(nprocs)),
        ring_size_(p2_ < 2 ? 2 : p2_),
        nbufs_(2 * nprocs + ring_size_ + 1),
        stride_((words + 7) & ~7u),
        x_(nprocs, pack_x(0, 2 * nprocs + ring_size_)),
        raw_buf_(new std::atomic<std::uint64_t>[
            static_cast<std::size_t>(2 * nprocs + ring_size_ + 1) *
                ((words + 7) & ~7u) + 7]),
        ring_(new RingCell[ring_size_]),
        announce_(new AnnounceSlot[nprocs]),
        priv_(new Priv[nprocs]),
        stats_(nprocs) {
    assert(nprocs >= 1 && nprocs <= kMaxProcs);
    assert(words >= 1);
    // Align buffer row 0 to a cache line so the stride padding isolates
    // rows from each other (the false-sharing fix E2/E3 measure).
    auto addr = reinterpret_cast<std::uintptr_t>(raw_buf_.get());
    buf0_ = raw_buf_.get() + ((64 - (addr & 63)) & 63) / sizeof(std::uint64_t);
    for (std::size_t i = 0; i < static_cast<std::size_t>(nbufs_) * stride_;
         ++i) {
      buf0_[i].store(0, std::memory_order_relaxed);
    }
    // Buffer 2N+R is current (all-zero initial value); process p owns
    // spare p and exchange buffer N+p; ring cell j seeds buffer 2N+j with
    // tag j-R (mod 2^46), already "aged" for the first real lap.
    for (std::uint32_t p = 0; p < n_; ++p) {
      priv_[p].spare = p;
      priv_[p].xbuf = n_ + p;
      announce_[p].a.store(pack_a(kIdle, n_ + p, 0),
                           std::memory_order_relaxed);
    }
    for (std::uint32_t j = 0; j < ring_size_; ++j) {
      const std::uint64_t seed_tag =
          (std::uint64_t{j} - ring_size_) & kRingTagMask;
      ring_[j].w.store(pack_ring(2 * n_ + j, seed_tag),
                       std::memory_order_relaxed);
    }
  }

  void ll(std::uint32_t p, std::uint64_t* out) {
    assert(p < n_);
    Priv& me = priv_[p];
    auto& c = stats_.at(p);
    me.seq = (me.seq + 1) & kSeqMask;  // the announce word holds 44 bits
    // Announce, offering our exchange buffer to a prospective helper.
    // mwllsc-ordering: seq_cst(this store and the winners' pre-SC probes
    // of A[(T+1) mod P] share one total order, so a winner that misses
    // the announce must have linked before it — bounding drift at P tags)
    announce_[p].a.store(pack_a(kWaiting, me.xbuf, me.seq),
                         std::memory_order_seq_cst);
    hook("ll:announced", p);
    trace_.emit(obs::EventKind::kLlStart, p, me.seq);
    for (;;) {
      const std::uint64_t x = x_.ll(p);
      const std::uint64_t t0 = x_.linked_tag(p);
      const std::uint32_t b = buf_of_x(x);
      hook("ll:read_x", p);
      copy_out(b, out);
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t drift = x_.current_tag() - t0;
      if (drift <= p2_) {
        // Aged validation passed: buffers rest >= R >= P tags in the ring
        // before reuse, so the copy is an untorn snapshot of version t0,
        // linearized at the link. Withdraw the announce.
        // The withdraw races a winner's donation CAS on this slot; the
        // total order picks exactly one side of the ownership exchange.
        // mwllsc-ordering: seq_cst(withdraw vs donation CAS, one winner)
        std::uint64_t expect = pack_a(kWaiting, me.xbuf, me.seq);
        bool reclaimed = false;
        if (!announce_[p].a.compare_exchange_strong(
                expect, pack_a(kIdle, me.xbuf, me.seq),
                std::memory_order_seq_cst)) {
          if (state_of_a(expect) == kHelped && seq_of_a(expect) == me.seq) {
            // A donation raced in. The fast-path value stands; adopt the
            // donated buffer as our new exchange buffer — the donor took
            // the one we offered.
            me.xbuf = buf_of_a(expect);
            c.bump(c.ll_helped);
            trace_.emit(obs::EventKind::kLlHelped, p, me.seq,
                        buf_of_a(expect));
          } else {
            // The word no longer carries our seq: a crash-stop reclaim
            // (reclaim_pid) judged this process dead and withdrew the
            // announce out from under it. The fast-path value is still an
            // untorn snapshot, but the slot — and the exchange buffer
            // folded into its word — belong to the reclaimer now, so the
            // only safe exit is to break the link and finish this op.
            // Reached only when a reclaimed process is resurrected under
            // test control; a genuinely dead process never gets here.
            reclaimed = true;
          }
        }
        me.ll_buf = b;
        // Any drift already broke the link; so does a raced reclaim.
        me.link_valid = (drift == 0) && !reclaimed;
        c.bump(c.ll_ops);
        trace_.emit(obs::EventKind::kLlFast, p, t0, b);
        return;
      }
      // Drift >= P+1: the P winners that linked after our announce swept
      // every announce slot pre-SC, so a donation is already posted.
      // mwllsc-ordering: seq_cst(this load sits in the same total order as
      // the announce store and the winners' probes — the sweep argument
      // only holds inside that order)
      const std::uint64_t a = announce_[p].a.load(std::memory_order_seq_cst);
      if (state_of_a(a) == kHelped && seq_of_a(a) == me.seq) {
        // Return the donated snapshot. We own the buffer now; no
        // validation needed.
        const std::uint32_t d = buf_of_a(a);
        copy_out(d, out);
        me.xbuf = d;
        me.link_valid = false;  // a successful SC already intervened
        c.bump(c.ll_helped);
        c.bump(c.ll_used_helped_value);
        c.bump(c.ll_ops);
        trace_.emit(obs::EventKind::kLlRescue, p, me.seq, d);
        return;
      }
      // Unreachable if the help guarantee holds (tests assert this
      // counter stays zero); kept as a defensive retry.
      c.bump(c.ll_retries);
      hook("ll:retry", p);
      trace_.emit(obs::EventKind::kLlRetry, p, me.seq);
    }
  }

  bool sc(std::uint32_t p, const std::uint64_t* v) {
    assert(p < n_);
    Priv& me = priv_[p];
    auto& c = stats_.at(p);
    c.bump(c.sc_ops);
    trace_.emit(obs::EventKind::kScAttempt, p, me.seq,
                me.link_valid ? 1 : 0);
    if (!me.link_valid) {               // helped/drifted LL or no LL: O(1)
      trace_.emit(obs::EventKind::kScFail, p, me.seq);
      return false;
    }
    me.link_valid = false;             // the link is consumed either way
    // Write the new value into our spare buffer.
    copy_in(me.spare, v);
    std::atomic_thread_fence(std::memory_order_release);
    hook("sc:wrote_spare", p);
    const std::uint64_t t = x_.linked_tag(p);
    // Probe the help schedule *before* the SC: the winner of tag T+1
    // reads A[(T+1) mod P] (P a power of two — mask, no division), so
    // consecutive winners sweep all slots after any announce.
    const std::uint32_t target =
        static_cast<std::uint32_t>(t + 1) & (p2_ - 1);
    if (target != p && target < n_) {
      // The probe pairs with the announce store in the single total
      // order: a probe after the announce cannot miss kWaiting.
      // mwllsc-ordering: seq_cst(probe half of the announce handshake)
      const std::uint64_t seen =
          announce_[target].a.load(std::memory_order_seq_cst);
      if (state_of_a(seen) == kWaiting) {
        hook("sc:probed", p);
        // Pre-SC help: copy the (still linked) current buffer into our
        // exchange buffer, re-validate the link seqlock-style — if it
        // holds, the copy is an untorn snapshot of version T taken after
        // the target announced — and donate it by marking A[target].
        copy_buf(me.ll_buf, me.xbuf);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (x_.vl(p)) {
          // The donation must precede our SC of tag T+1 in the total
          // order, and it races the owner's withdraw CAS on the same
          // slot; exactly one wins.
          // mwllsc-ordering: seq_cst(donation before SC; races withdraw)
          std::uint64_t expect = seen;
          if (announce_[target].a.compare_exchange_strong(
                  expect, pack_a(kHelped, me.xbuf, seq_of_a(seen)),
                  std::memory_order_seq_cst)) {
            me.xbuf = buf_of_a(seen);  // ownership exchange, O(1)
            c.bump(c.helps_given);
            hook("sc:help_marked", p);
            trace_.emit(obs::EventKind::kHelpInstall, p, seq_of_a(seen),
                        target);
          }
        }
      }
    }
    if (!x_.sc(p, pack_x(p, me.spare))) {
      trace_.emit(obs::EventKind::kScFail, p, me.seq);
      return false;
    }
    c.bump(c.sc_success);
    trace_.emit(obs::EventKind::kScCommit, p, (t + 1) & kRingTagMask);
    // The bank write: retire the previously-current buffer through the
    // aged ring (I2: exactly one resolution per successful SC).
    const std::uint32_t retired = me.ll_buf;
    const std::uint64_t mytag = (t + 1) & kRingTagMask;
    RingCell& cell = ring_[static_cast<std::uint32_t>(t + 1) & (ring_size_ - 1)];
    for (;;) {
      const std::uint64_t rw = cell.w.load(std::memory_order_acquire);
      const std::uint64_t d = (mytag - ring_tag_of(rw)) & kRingTagMask;
      // All tags in a cell are congruent mod R, so d is a multiple of R:
      // d >= R with the high bits clear means the cell is genuinely
      // behind us — swap our retiree in and take the aged buffer out.
      if (d >= ring_size_ && !(d >> (kRingTagBits - 1))) {
        // The ring swap is the bank-write resolution: exactly one winner
        // per tag retires into the cell, which is what keeps invariant
        // I2 and the aging bound R.
        // mwllsc-ordering: seq_cst(one retiree per tag resolves the cell)
        std::uint64_t expect = rw;
        if (cell.w.compare_exchange_strong(expect, pack_ring(retired, mytag),
                                           std::memory_order_seq_cst)) {
          me.spare = ring_buf_of(rw);
          break;
        }
        // Lost to another winner resolving this cell; re-read (bounded:
        // each failure is a distinct winner with a smaller tag).
      } else {
        // Lapped: the cell moved past our tag while we stalled, so our
        // own retiree has already aged >= R tags — keep it as the spare.
        me.spare = retired;
        break;
      }
    }
    c.bump(c.bank_writes);
    hook("sc:retired", p);
    trace_.emit(obs::EventKind::kBufferRetire, p, mytag, retired);
    trace_.emit(obs::EventKind::kBankWrite, p, mytag, retired);
    return true;
  }

  bool vl(std::uint32_t p) {
    assert(p < n_);
    auto& c = stats_.at(p);
    c.bump(c.vl_ops);
    if (!priv_[p].link_valid) return false;
    return x_.vl(p);  // O(1), independent of W
  }

  /// Crash-stop slot reclamation (membership layer, DESIGN.md §10).
  /// Settles the announce-slot obligations a dead process left behind so
  /// its pid can be reissued: a posted WAITING announce is withdrawn (so
  /// future winners stop donating into a slot nobody will read) and an
  /// unconsumed donation is adopted into the word's buffer field — the
  /// dead process's old exchange buffer went to the donor, the donated
  /// buffer is the slot's buffer now, and the ownership census stays
  /// exact. The unconditional seq bump fences the slot against stale
  /// donation CASes keyed to the dead seq. A buffer the dead process held
  /// mid-retirement is not recovered here: the aged ring absorbs orphaned
  /// cells via the lapping rule, so survivors never block on it.
  /// Precondition: p takes no further steps (crash-stop); the pid is
  /// reissued only after rebind_pid. Returns true if an obligation (a
  /// posted announce or an unconsumed donation) was actually settled.
  bool reclaim_pid(std::uint32_t p) {
    assert(p < n_);
    // mwllsc-ordering: seq_cst(the withdraw-by-proxy races a winner's
    // donation CAS on this slot exactly like the owner's withdraw does;
    // the single total order picks one side of the ownership exchange)
    std::uint64_t a = announce_[p].a.load(std::memory_order_seq_cst);
    for (;;) {
      const std::uint64_t next =
          pack_a(kIdle, buf_of_a(a), (seq_of_a(a) + 1) & kSeqMask);
      // mwllsc-ordering: seq_cst(same handshake as the load above: one
      // winner between this withdraw-by-proxy and a racing donation)
      if (announce_[p].a.compare_exchange_weak(a, next,
                                               std::memory_order_seq_cst)) {
        break;
      }
      // Lost to a donation landing on the dead WAITING word; the reloaded
      // word is HELPED and the next lap adopts it (at most one extra lap:
      // donations require WAITING, which the word never is again).
    }
    trace_.emit(obs::EventKind::kProcCrashReclaim, p, seq_of_a(a));
    return state_of_a(a) != kIdle;
  }

  /// Reissues pid p to a new owner after reclaim_pid or a graceful
  /// retirement: re-derives the private mirror from the announce word so
  /// the new owner starts consistent — the slot's exchange buffer and seq
  /// come from the word (a stale HELPED word left by a withdraw-failure
  /// adoption resolves to the same buffer the old owner held), and the
  /// link starts broken. Must not run concurrently with any operation by
  /// a previous owner of p; the membership layer guarantees this by only
  /// reissuing slots whose holder retired or was reclaimed.
  void rebind_pid(std::uint32_t p) {
    assert(p < n_);
    // mwllsc-ordering: seq_cst(reads the word settled by the retire-path
    // withdraw or reclaim_pid CAS in the same total order)
    const std::uint64_t a = announce_[p].a.load(std::memory_order_seq_cst);
    Priv& me = priv_[p];
    me.xbuf = buf_of_a(a);
    me.seq = seq_of_a(a);
    me.link_valid = false;
  }

  std::uint32_t words() const { return w_; }

  OpStatsSnapshot stats() const { return stats_.snapshot(); }

  util::Footprint footprint() const {
    util::Footprint f;
    f.add("X descriptor (1-word LL/SC)", x_.shared_bytes());
    f.add("value buffers ((2N+R+1) x W words, rows line-padded)",
          static_cast<std::size_t>(nbufs_) * stride_ * sizeof(std::uint64_t) +
              64);  // + alignment slack
    f.add("retirement ring (R cells)", ring_size_ * sizeof(RingCell));
    f.add("announce/help slots (N)", n_ * sizeof(AnnounceSlot));
    f.add("per-process state (private)",
          n_ * sizeof(Priv) + x_.private_bytes() + stats_.bytes(),
          util::Footprint::Ownership::kPerProcess);
    return f;
  }

  void set_step_hook(StepHook h, void* ctx) {
    hook_ = h;
    hook_ctx_ = ctx;
  }

  /// Binds this variable to a trace sink (obs/trace.hpp); self-describes
  /// with the "jp" substrate prefix the offline checker keys its 4W+12 /
  /// zero-retry rules on. No-op when MWLLSC_TRACE is off.
  void set_trace(obs::TraceSink* sink, std::uint32_t var) {
    trace_.bind(sink, var);
    if (sink) sink->describe_var(var, w_, "jp");
  }

 private:
  // X packs <pid, buf> into the engine's value bits: buf in the low 18,
  // pid in the next 14 — fits the 32-bit value of the packed64 engine.
  static constexpr std::uint32_t kBufBits = 18;
  static constexpr std::uint32_t kPidBits = 14;
  static constexpr std::uint32_t kMaxProcs = 1u << kPidBits;
  static_assert(LLSC::kValueBits >= kBufBits + kPidBits,
                "engine value too narrow for the <pid, buf> descriptor");

  static std::uint64_t pack_x(std::uint32_t pid, std::uint32_t buf) {
    return (static_cast<std::uint64_t>(pid) << kBufBits) | buf;
  }
  static std::uint32_t buf_of_x(std::uint64_t x) {
    return static_cast<std::uint32_t>(x & ((1u << kBufBits) - 1));
  }

  // Announce slot word: state(2) | buf(18) | seq(44).
  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::uint64_t kWaiting = 1;
  static constexpr std::uint64_t kHelped = 2;

  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << 44) - 1;

  static std::uint64_t pack_a(std::uint64_t state, std::uint32_t buf,
                              std::uint64_t seq) {
    return (seq << 20) | (static_cast<std::uint64_t>(buf) << 2) | state;
  }
  static std::uint64_t state_of_a(std::uint64_t a) { return a & 3; }
  static std::uint32_t buf_of_a(std::uint64_t a) {
    return static_cast<std::uint32_t>((a >> 2) & ((1u << kBufBits) - 1));
  }
  static std::uint64_t seq_of_a(std::uint64_t a) { return a >> 20; }

  // Ring cell word: buf(18) | tag(46). The tag's 2^46 envelope bounds ABA
  // the same way the announce seq does.
  static constexpr std::uint32_t kRingTagBits = 46;
  static constexpr std::uint64_t kRingTagMask =
      (std::uint64_t{1} << kRingTagBits) - 1;

  static std::uint64_t pack_ring(std::uint32_t buf, std::uint64_t tag) {
    return (tag << kBufBits) | buf;
  }
  static std::uint32_t ring_buf_of(std::uint64_t r) {
    return static_cast<std::uint32_t>(r & ((1u << kBufBits) - 1));
  }
  static std::uint64_t ring_tag_of(std::uint64_t r) { return r >> kBufBits; }

  static std::uint32_t next_pow2(std::uint32_t v) {
    std::uint32_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  struct alignas(64) AnnounceSlot {
    std::atomic<std::uint64_t> a;
  };

  struct alignas(64) RingCell {
    std::atomic<std::uint64_t> w;
  };

  struct alignas(64) Priv {  // touched only by the owning process
    std::uint32_t spare = 0;
    std::uint32_t xbuf = 0;
    std::uint32_t ll_buf = 0;
    std::uint64_t seq = 0;
    bool link_valid = false;
  };

  std::atomic<std::uint64_t>* buf_row(std::uint32_t b) const {
    return buf0_ + static_cast<std::size_t>(b) * stride_;
  }

  void copy_out(std::uint32_t b, std::uint64_t* out) const {
    const std::atomic<std::uint64_t>* row = buf_row(b);
    for (std::uint32_t i = 0; i < w_; ++i) {
      out[i] = row[i].load(std::memory_order_relaxed);
    }
  }

  void copy_in(std::uint32_t b, const std::uint64_t* v) {
    std::atomic<std::uint64_t>* row = buf_row(b);
    for (std::uint32_t i = 0; i < w_; ++i) {
      row[i].store(v[i], std::memory_order_relaxed);
    }
  }

  void copy_buf(std::uint32_t from, std::uint32_t to) {
    const std::atomic<std::uint64_t>* src = buf_row(from);
    std::atomic<std::uint64_t>* dst = buf_row(to);
    for (std::uint32_t i = 0; i < w_; ++i) {
      dst[i].store(src[i].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    }
  }

  void hook(const char* point, std::uint32_t pid) {
    if (hook_) hook_(hook_ctx_, point, pid);
  }

  const std::uint32_t n_;
  const std::uint32_t w_;
  const std::uint32_t p2_;        ///< N rounded up to a power of two (P)
  const std::uint32_t ring_size_; ///< R = max(2, P), a power of two
  const std::uint32_t nbufs_;
  const std::uint32_t stride_;    ///< buffer row pitch, words (line-padded)
  LLSC x_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> raw_buf_;
  std::atomic<std::uint64_t>* buf0_ = nullptr;  ///< 64B-aligned row 0
  std::unique_ptr<RingCell[]> ring_;
  std::unique_ptr<AnnounceSlot[]> announce_;
  std::unique_ptr<Priv[]> priv_;
  util::OpStatsArray stats_;
  obs::TraceHandle trace_;
  StepHook hook_ = nullptr;
  void* hook_ctx_ = nullptr;
};

}  // namespace mwllsc::core
