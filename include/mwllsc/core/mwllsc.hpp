// The paper's wait-free N-process W-word LL/SC variable, built from a
// single-word LL/SC building block (core/llsc.hpp).
//
// Layout. The W-word value always lives in one of 2N+1 buffers. The 1-word
// LL/SC variable X holds the descriptor <pid, buf>: which buffer is current
// and who installed it. Every process owns two buffers at all times: a
// *spare* it writes its next SC value into, and an *exchange* buffer it
// offers through its announce slot. The remaining buffer is current.
//
// Fast path. LL(p) announces, then reads X, copies the current buffer and
// validates X; if X did not move, the copy is a consistent snapshot
// (buffers are recycled only after an intervening successful SC, which
// would change X's tag). SC(p) writes its spare, then does a 1-word SC on
// X; on success the previously-current buffer is retired and becomes p's
// new spare — the "bank" pointer write of Line 13, exactly one per
// successful SC (invariant I2).
//
// Helping (announce / ownership exchange). A copy loop can starve under a
// write storm, so LL(p) first publishes <WAITING, exchange-buf, seq> in its
// announce slot A[p]. Every SC, *before* its 1-word SC on X, probes one
// announce slot chosen by the tag it is about to install: the winner of tag
// T+1 probes A[(T+1) mod N]. On success it donates the retired buffer —
// which holds the value that was current the instant before its SC — by
// CASing A[p] from the exact WAITING word to <HELPED, retired-buf, seq>,
// taking the offered exchange buffer in return. The exchange is O(1): no
// value is copied, only buffer ownership moves (invariant I1: every buffer
// has exactly one owner — current, a spare, or an exchange slot). Because
// successful SCs install consecutive tags, the round-robin probe schedule
// guarantees a WAITING process is served within N+1 successful SCs, so
// LL(p) completes in at most N+3 copy attempts: wait-free with an
// O(N + W + N*min(W, N)) step bound. (The paper's full protocol sharpens
// this to O(W); see DESIGN.md for the delta.)
//
// Linearization. A fast-path LL linearizes at its validated read of X; a
// helped LL linearizes immediately before the donor's successful SC — the
// donor probed A[p] after p announced and before its SC, so that instant
// lies within p's LL. A helped LL therefore returns with its link already
// broken: VL reports false and SC fails in O(1), which is semantically
// exact (a successful SC intervened).
//
// Memory ordering. Buffer words are relaxed atomics; the copy is validated
// seqlock-style (acquire fence before the X re-check) and publication rides
// X's seq_cst SC. Donated buffers need no validation: ownership transfer
// makes them private to the reader, and their contents are visible through
// the donor's release chain (value writer -> X -> donor -> A[p] -> reader).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/llsc.hpp"
#include "util/stats.hpp"

namespace mwllsc::core {

template <class LLSC>
class MwLLSC {
 public:
  /// Test seam: called at named protocol points when installed (never from
  /// the default path — the pointer check is the only overhead).
  using StepHook = void (*)(void* ctx, const char* point, std::uint32_t pid);

  MwLLSC(std::uint32_t nprocs, std::uint32_t words)
      : n_(nprocs),
        w_(words),
        nbufs_(2 * nprocs + 1),
        x_(nprocs, pack_x(0, 2 * nprocs)),
        buf_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(
            2 * nprocs + 1) * words]),
        announce_(new AnnounceSlot[nprocs]),
        priv_(new Priv[nprocs]),
        stats_(nprocs) {
    assert(nprocs >= 1 && nprocs <= kMaxProcs);
    assert(words >= 1);
    for (std::size_t i = 0; i < static_cast<std::size_t>(nbufs_) * w_; ++i) {
      buf_[i].store(0, std::memory_order_relaxed);
    }
    // Buffer 2N is current (holding the all-zero initial value); process p
    // owns spare p and exchange buffer N+p.
    for (std::uint32_t p = 0; p < n_; ++p) {
      priv_[p].spare = p;
      priv_[p].xbuf = n_ + p;
      announce_[p].a.store(pack_a(kIdle, n_ + p, 0),
                           std::memory_order_relaxed);
    }
  }

  void ll(std::uint32_t p, std::uint64_t* out) {
    assert(p < n_);
    Priv& me = priv_[p];
    me.seq = (me.seq + 1) & kSeqMask;  // the announce word holds 44 bits
    // Announce, offering our exchange buffer to a prospective helper.
    announce_[p].a.store(pack_a(kWaiting, me.xbuf, me.seq),
                         std::memory_order_seq_cst);
    hook("ll:announced", p);
    for (;;) {
      const std::uint64_t x = x_.ll(p);
      const std::uint32_t b = buf_of_x(x);
      hook("ll:read_x", p);
      copy_out(b, out);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (x_.vl(p)) {
        // Fast path: the snapshot is consistent. Withdraw the announce.
        std::uint64_t expect = pack_a(kWaiting, me.xbuf, me.seq);
        if (!announce_[p].a.compare_exchange_strong(
                expect, pack_a(kIdle, me.xbuf, me.seq),
                std::memory_order_seq_cst)) {
          // A donation raced in after our validate. The fast-path value
          // stands (it linearizes at the validated read, which preceded
          // the donor's SC); just adopt the donated buffer as our new
          // exchange buffer — the donor took the one we offered.
          assert(state_of_a(expect) == kHelped && seq_of_a(expect) == me.seq);
          me.xbuf = buf_of_a(expect);
          stats_.at(p).bump(stats_.at(p).ll_helped);
        }
        me.ll_buf = b;
        me.link_valid = true;
        stats_.at(p).bump(stats_.at(p).ll_ops);
        return;
      }
      // Line 4: did a helper hand us a consistent value?
      const std::uint64_t a = announce_[p].a.load(std::memory_order_seq_cst);
      if (state_of_a(a) == kHelped && seq_of_a(a) == me.seq) {
        // Line 7: return the donated snapshot. We own the buffer now; no
        // validation needed.
        const std::uint32_t d = buf_of_a(a);
        copy_out(d, out);
        me.xbuf = d;
        me.link_valid = false;  // a successful SC already intervened
        auto& c = stats_.at(p);
        c.bump(c.ll_helped);
        c.bump(c.ll_used_helped_value);
        c.bump(c.ll_ops);
        return;
      }
      hook("ll:retry", p);
    }
  }

  bool sc(std::uint32_t p, const std::uint64_t* v) {
    assert(p < n_);
    Priv& me = priv_[p];
    auto& c = stats_.at(p);
    c.bump(c.sc_ops);
    if (!me.link_valid) return false;  // helped LL or no LL: O(1) failure
    me.link_valid = false;             // the link is consumed either way
    // Write the new value into our spare buffer.
    copy_in(me.spare, v);
    std::atomic_thread_fence(std::memory_order_release);
    hook("sc:wrote_spare", p);
    // Probe the help schedule *before* the SC: the winner of tag T+1 reads
    // A[(T+1) mod N], so consecutive winners sweep all slots, and any
    // donation it later makes is for an announce that preceded its SC.
    const std::uint32_t target =
        static_cast<std::uint32_t>((x_.linked_tag(p) + 1) % n_);
    std::uint64_t seen = announce_[target].a.load(std::memory_order_seq_cst);
    if (!x_.sc(p, pack_x(p, me.spare))) return false;
    c.bump(c.sc_success);
    // Line 13, the bank write: retire the previously-current buffer (the
    // one our LL observed) into our spare slot. Invariant I2: exactly one
    // such write per successful SC.
    const std::uint32_t retired = me.ll_buf;
    me.spare = retired;
    c.bump(c.bank_writes);
    if (target != p && state_of_a(seen) == kWaiting) {
      // Ownership exchange: donate the retired buffer — it holds the value
      // that was current until our SC an instant ago — and take the
      // exchange buffer the waiting process offered.
      const std::uint64_t donated =
          pack_a(kHelped, retired, seq_of_a(seen));
      if (announce_[target].a.compare_exchange_strong(
              seen, donated, std::memory_order_seq_cst)) {
        me.spare = buf_of_a(seen);
        c.bump(c.helps_given);
      }
    }
    return true;
  }

  bool vl(std::uint32_t p) {
    assert(p < n_);
    auto& c = stats_.at(p);
    c.bump(c.vl_ops);
    if (!priv_[p].link_valid) return false;
    return x_.vl(p);  // O(1), independent of W
  }

  std::uint32_t words() const { return w_; }

  OpStatsSnapshot stats() const { return stats_.snapshot(); }

  util::Footprint footprint() const {
    util::Footprint f;
    f.add("X descriptor (1-word LL/SC)", x_.shared_bytes());
    f.add("value buffers ((2N+1) x W words)",
          static_cast<std::size_t>(nbufs_) * w_ * sizeof(std::uint64_t));
    f.add("announce/help slots (N)", n_ * sizeof(AnnounceSlot));
    f.add("per-process state (private)",
          n_ * sizeof(Priv) + x_.private_bytes() + stats_.bytes());
    return f;
  }

  void set_step_hook(StepHook h, void* ctx) {
    hook_ = h;
    hook_ctx_ = ctx;
  }

 private:
  // X packs <pid, buf> into the engine's value bits: buf in the low 18,
  // pid in the next 14 — fits the 32-bit value of the packed64 engine.
  static constexpr std::uint32_t kBufBits = 18;
  static constexpr std::uint32_t kPidBits = 14;
  static constexpr std::uint32_t kMaxProcs = 1u << kPidBits;
  static_assert(LLSC::kValueBits >= kBufBits + kPidBits,
                "engine value too narrow for the <pid, buf> descriptor");

  static std::uint64_t pack_x(std::uint32_t pid, std::uint32_t buf) {
    return (static_cast<std::uint64_t>(pid) << kBufBits) | buf;
  }
  static std::uint32_t buf_of_x(std::uint64_t x) {
    return static_cast<std::uint32_t>(x & ((1u << kBufBits) - 1));
  }

  // Announce slot word: state(2) | buf(18) | seq(44).
  static constexpr std::uint64_t kIdle = 0;
  static constexpr std::uint64_t kWaiting = 1;
  static constexpr std::uint64_t kHelped = 2;

  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << 44) - 1;

  static std::uint64_t pack_a(std::uint64_t state, std::uint32_t buf,
                              std::uint64_t seq) {
    return (seq << 20) | (static_cast<std::uint64_t>(buf) << 2) | state;
  }
  static std::uint64_t state_of_a(std::uint64_t a) { return a & 3; }
  static std::uint32_t buf_of_a(std::uint64_t a) {
    return static_cast<std::uint32_t>((a >> 2) & ((1u << kBufBits) - 1));
  }
  static std::uint64_t seq_of_a(std::uint64_t a) { return a >> 20; }

  struct alignas(64) AnnounceSlot {
    std::atomic<std::uint64_t> a;
  };

  struct alignas(64) Priv {  // touched only by the owning process
    std::uint32_t spare = 0;
    std::uint32_t xbuf = 0;
    std::uint32_t ll_buf = 0;
    std::uint64_t seq = 0;
    bool link_valid = false;
  };

  std::atomic<std::uint64_t>* buf_row(std::uint32_t b) const {
    return buf_.get() + static_cast<std::size_t>(b) * w_;
  }

  void copy_out(std::uint32_t b, std::uint64_t* out) const {
    const std::atomic<std::uint64_t>* row = buf_row(b);
    for (std::uint32_t i = 0; i < w_; ++i) {
      out[i] = row[i].load(std::memory_order_relaxed);
    }
  }

  void copy_in(std::uint32_t b, const std::uint64_t* v) {
    std::atomic<std::uint64_t>* row = buf_row(b);
    for (std::uint32_t i = 0; i < w_; ++i) {
      row[i].store(v[i], std::memory_order_relaxed);
    }
  }

  void hook(const char* point, std::uint32_t pid) {
    if (hook_) hook_(hook_ctx_, point, pid);
  }

  const std::uint32_t n_;
  const std::uint32_t w_;
  const std::uint32_t nbufs_;
  LLSC x_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buf_;
  std::unique_ptr<AnnounceSlot[]> announce_;
  std::unique_ptr<Priv[]> priv_;
  util::OpStatsArray stats_;
  StepHook hook_ = nullptr;
  void* hook_ctx_ = nullptr;
};

}  // namespace mwllsc::core
