// mwllsc-lint lexer: turns the blanked code view of a SourceFile into a
// flat token stream (identifiers, numbers, punctuation) with 1-based line
// numbers. Preprocessor directives are skipped whole (including backslash
// continuations) — the analyzer reasons about both arms of an #if, which
// is exactly what a text-level ordering lint wants.
#pragma once

#include <cctype>
#include <string>
#include <vector>

#include "lint/source.hpp"

namespace mwllsc::lint {

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

inline std::vector<Token> tokenize(const SourceFile& f) {
  std::vector<Token> out;
  const std::string& s = f.code;
  int line = 1;
  bool line_only_ws = true;  // nothing but whitespace so far on this line

  // Multi-char punctuators, longest first (maximal munch).
  static const char* kPunct3[] = {"<<=", ">>=", "...", "->*"};
  static const char* kPunct2[] = {"::", "->", "++", "--", "+=", "-=",
                                  "*=", "/=", "%=", "&=", "|=", "^=",
                                  "==", "!=", "<=", ">=", "&&", "||",
                                  "<<", ">>"};

  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      line_only_ws = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && line_only_ws) {
      // Preprocessor line: swallow to end of line, honoring continuations.
      while (i < s.size()) {
        if (s[i] == '\\' && i + 1 < s.size() && s[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (s[i] == '\n') break;
        ++i;
      }
      continue;
    }
    line_only_ws = false;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token t;
      t.kind = Token::Kind::kIdent;
      t.line = line;
      while (i < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[i])) ||
              s[i] == '_')) {
        t.text.push_back(s[i++]);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Token t;
      t.kind = Token::Kind::kNumber;
      t.line = line;
      while (i < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[i])) ||
              s[i] == '.' || s[i] == '\'')) {
        t.text.push_back(s[i++]);
      }
      out.push_back(std::move(t));
      continue;
    }
    Token t;
    t.kind = Token::Kind::kPunct;
    t.line = line;
    bool matched = false;
    for (const char* p : kPunct3) {
      if (s.compare(i, 3, p) == 0) {
        t.text = p;
        i += 3;
        matched = true;
        break;
      }
    }
    if (!matched) {
      for (const char* p : kPunct2) {
        if (s.compare(i, 2, p) == 0) {
          t.text = p;
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      t.text = std::string(1, c);
      ++i;
    }
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace mwllsc::lint
