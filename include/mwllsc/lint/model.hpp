// mwllsc-lint model: walks the token stream and reconstructs what the rule
// engine needs to reason about —
//
//   * every std::atomic<...> declaration (member field, global, local or
//     pointer), with its cache-line-padding evidence: alignas(...) on the
//     declaration itself or on the immediately enclosing struct/class;
//   * every atomic access site: load/store/exchange/compare_exchange_*/
//     fetch_* member calls (with the explicit memory_order arguments they
//     pass, if any), std::atomic_thread_fence calls, and operator sugar
//     (++/--/+=/=/...) on names declared atomic in scope;
//   * every raw-atomic escape hatch: volatile, __sync_*/__atomic_*
//     builtins, and inline asm.
//
// This is a scope-aware token scan, not a full C++ parse: it tracks
// namespace/class/enum/block nesting (so member fields are distinguished
// from locals), skips template parameter lists and preprocessor lines, and
// resolves operator sugar by name against declarations whose scope is
// live — members bind inside their class body only, which keeps same-named
// plain fields elsewhere (e.g. a snapshot struct mirroring a counter cell)
// from false-positiving. Path expressions through objects (x.field++) are
// therefore only checked inside the declaring class; the member-call rules
// are name-independent and catch the rest.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/source.hpp"

namespace mwllsc::lint {

struct AccessSite {
  enum class Kind {
    kLoad,
    kStore,
    kExchange,
    kCas,
    kFetchOp,
    kFence,
    kOperator,
  };

  Kind kind = Kind::kLoad;
  std::string method;  ///< "load", "fetch_add", "++", "=", ...
  std::string object;  ///< best-effort receiver text, for messages
  int line_begin = 0;  ///< line of the method / operator token
  int line_end = 0;    ///< line of the closing paren (multi-line calls)
  std::vector<std::string> orders;  ///< explicit orders: "seq_cst", ...
};

struct AtomicDecl {
  std::string name;
  int line = 0;
  bool member = false;   ///< declared at class scope (a shared field)
  bool global = false;   ///< declared at namespace scope
  bool pointer = false;  ///< pointer-to-atomic (R5 does not apply)
  bool padded = false;   ///< alignas on the decl or its enclosing class
  std::size_t name_tok = 0;
  std::size_t live_begin = 0;  ///< token range where operator sugar binds
  std::size_t live_end = 0;    ///< (members: their class body)
};

struct RawUse {
  std::string what;
  int line = 0;
};

struct FileModel {
  SourceFile src;
  std::vector<Token> toks;
  std::vector<AccessSite> sites;
  std::vector<AtomicDecl> decls;
  std::vector<RawUse> raw;
};

namespace detail {

inline AccessSite::Kind method_kind(const std::string& m, bool* known) {
  *known = true;
  if (m == "load") return AccessSite::Kind::kLoad;
  if (m == "store") return AccessSite::Kind::kStore;
  if (m == "exchange") return AccessSite::Kind::kExchange;
  if (m == "compare_exchange_strong" || m == "compare_exchange_weak")
    return AccessSite::Kind::kCas;
  if (m == "fetch_add" || m == "fetch_sub" || m == "fetch_and" ||
      m == "fetch_or" || m == "fetch_xor")
    return AccessSite::Kind::kFetchOp;
  *known = false;
  return AccessSite::Kind::kLoad;
}

/// Skips a balanced <...> starting at toks[i] == "<"; ">>" closes two
/// levels. Returns the index one past the closing ">", or `i` unchanged
/// when the angles never close (treated as not-a-template by callers).
inline std::size_t skip_angles(const std::vector<Token>& toks,
                               std::size_t i) {
  if (i >= toks.size() || toks[i].text != "<") return i;
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    const std::string& t = toks[j].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return j + 1;
    } else if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (t == ";" || t == "{" || t == "}") {
      return i;  // not a template argument list after all
    }
  }
  return i;
}

inline std::size_t skip_parens(const std::vector<Token>& toks,
                               std::size_t i) {
  if (i >= toks.size() || toks[i].text != "(") return i;
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (toks[j].text == "(") ++depth;
    if (toks[j].text == ")" && --depth == 0) return j + 1;
  }
  return toks.size();
}

/// Collects the explicit memory_order arguments of a call whose opening
/// paren is toks[open]. Only depth-1 tokens count, so orders named by a
/// nested call (e.g. a load inside a store's value argument) do not leak
/// into the outer site. Returns the closing-paren line in *line_end.
inline std::vector<std::string> collect_orders(
    const std::vector<Token>& toks, std::size_t open, int* line_end) {
  std::vector<std::string> orders;
  int depth = 0;
  *line_end = toks[open].line;
  for (std::size_t j = open; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.text == "(") {
      ++depth;
      continue;
    }
    if (t.text == ")") {
      if (--depth == 0) {
        *line_end = t.line;
        return orders;
      }
      continue;
    }
    if (depth != 1 || t.kind != Token::Kind::kIdent) continue;
    if (t.text.rfind("memory_order_", 0) == 0) {
      orders.push_back(t.text.substr(13));
    } else if (t.text == "memory_order" && j + 2 < toks.size() &&
               toks[j + 1].text == "::") {
      orders.push_back(toks[j + 2].text);
    }
  }
  return orders;
}

/// Best-effort receiver text for messages: walks back over a member-access
/// chain (idents, ::, ., ->, [idx]) from the token before the dot.
inline std::string receiver_text(const std::vector<Token>& toks,
                                 std::size_t dot) {
  std::string out;
  std::size_t j = dot;
  int parts = 0;
  while (j > 0 && parts < 8) {
    const std::string& t = toks[j - 1].text;
    if (t == "]") {
      // find the matching '['
      int depth = 0;
      std::size_t k = j - 1;
      while (k > 0) {
        if (toks[k].text == "]") ++depth;
        if (toks[k].text == "[" && --depth == 0) break;
        --k;
      }
      out.insert(0, "[..]");
      j = k;
    } else if ((toks[j - 1].kind == Token::Kind::kIdent &&
                t != "return" && t != "if" && t != "while" &&
                t != "else" && t != "do") ||
               t == "." || t == "->" || t == "::") {
      out.insert(0, t);
      j -= 1;
    } else {
      break;
    }
    ++parts;
  }
  return out.size() > 48 ? out.substr(out.size() - 48) : out;
}

}  // namespace detail

inline FileModel build_model(SourceFile src) {
  FileModel m;
  m.src = std::move(src);
  m.toks = tokenize(m.src);
  const std::vector<Token>& toks = m.toks;
  const std::size_t n = toks.size();

  struct Scope {
    enum class Kind { kNamespace, kClass, kEnum, kBlock };
    Kind kind = Kind::kBlock;
    bool padded = false;
    std::size_t open_tok = 0;
  };
  std::vector<Scope> scopes;
  enum class Pending { kNone, kNamespace, kClass, kEnum };
  Pending pending = Pending::kNone;
  bool pending_padded = false;

  auto at_class_scope = [&] {
    return !scopes.empty() && scopes.back().kind == Scope::Kind::kClass;
  };
  auto at_namespace_scope = [&] {
    return scopes.empty() ||
           scopes.back().kind == Scope::Kind::kNamespace;
  };
  auto class_padded = [&] {
    return at_class_scope() && scopes.back().padded;
  };

  // Tries to parse an atomic variable/field declaration whose statement
  // starts at toks[i]; records every declarator. Only records — the main
  // walk keeps scanning the same tokens, so initializers still surface
  // any access sites they contain.
  auto try_decl = [&](std::size_t i) {
    std::size_t j = i;
    bool decl_padded = false;
    for (;;) {
      if (j >= n) return;
      const std::string& t = toks[j].text;
      if (t == "static" || t == "mutable" || t == "constexpr" ||
          t == "inline" || t == "extern" || t == "thread_local" ||
          t == "const") {
        ++j;
        continue;
      }
      if (t == "alignas" && j + 1 < n && toks[j + 1].text == "(") {
        decl_padded = true;
        j = detail::skip_parens(toks, j + 1);
        continue;
      }
      break;
    }
    if (j + 1 < n && toks[j].text == "std" && toks[j + 1].text == "::") {
      j += 2;
    }
    if (j >= n || toks[j].text != "atomic") return;
    ++j;
    const std::size_t after = detail::skip_angles(toks, j);
    if (after == j) return;  // `atomic` without template args: not a decl
    j = after;

    bool first = true;
    for (;;) {
      bool ptr = false;
      while (j < n && (toks[j].text == "*" || toks[j].text == "&")) {
        ptr = ptr || toks[j].text == "*";
        ++j;
      }
      if (j >= n || toks[j].kind != Token::Kind::kIdent) {
        if (first) return;  // e.g. a cast or template-id in an expression
        break;
      }
      if (j + 1 < n && toks[j + 1].text == "(") {
        return;  // a function returning atomic/atomic*, not a variable
      }
      AtomicDecl d;
      d.name = toks[j].text;
      d.line = toks[j].line;
      d.name_tok = j;
      d.member = at_class_scope();
      d.global = at_namespace_scope();
      d.pointer = ptr;
      d.padded = decl_padded || class_padded();
      d.live_begin =
          d.member && !scopes.empty() ? scopes.back().open_tok : j + 1;
      d.live_end = 0;  // patched when the enclosing scope closes
      m.decls.push_back(d);
      ++j;
      first = false;

      // Skip to `,` (next declarator) or `;` (end) at balanced depth.
      int pd = 0, bd = 0, ad = 0;
      while (j < n) {
        const std::string& t = toks[j].text;
        if (t == "(") ++pd;
        if (t == ")") --pd;
        if (t == "{") ++bd;
        if (t == "}") --bd;
        if (t == "[") ++ad;
        if (t == "]") --ad;
        if (pd == 0 && bd == 0 && ad == 0) {
          if (t == ";") return;
          if (t == ",") {
            ++j;
            break;
          }
        }
        if (bd < 0) return;  // ran out of the enclosing scope: bail
        ++j;
      }
      if (j >= n) return;
    }
  };

  std::string prev_text = ";";  // start of file counts as statement start
  for (std::size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];

    // Template parameter lists may contain `class`/`typename` keywords
    // that must not prime the scope machine.
    if (t.kind == Token::Kind::kIdent && t.text == "template" &&
        i + 1 < n && toks[i + 1].text == "<") {
      const std::size_t after = detail::skip_angles(toks, i + 1);
      if (after != i + 1) {
        i = after - 1;
        prev_text = ">";
        continue;
      }
    }

    if (t.kind == Token::Kind::kIdent) {
      if (t.text == "namespace") {
        pending = Pending::kNamespace;
      } else if (t.text == "enum") {
        pending = Pending::kEnum;
      } else if (t.text == "struct" || t.text == "class" ||
                 t.text == "union") {
        if (pending != Pending::kEnum) {
          pending = Pending::kClass;
          pending_padded = false;
        }
      } else if (t.text == "alignas" && pending == Pending::kClass) {
        pending_padded = true;
      } else if (t.text == "volatile") {
        m.raw.push_back({"volatile", t.line});
      } else if (t.text.rfind("__sync_", 0) == 0 ||
                 t.text.rfind("__atomic_", 0) == 0) {
        m.raw.push_back({t.text, t.line});
      } else if (t.text == "asm" || t.text == "__asm" ||
                 t.text == "__asm__") {
        m.raw.push_back({t.text, t.line});
      } else if ((t.text == "atomic_thread_fence" ||
                  t.text == "atomic_signal_fence") &&
                 i + 1 < n && toks[i + 1].text == "(") {
        AccessSite s;
        s.kind = AccessSite::Kind::kFence;
        s.method = t.text;
        s.line_begin = t.line;
        s.orders = detail::collect_orders(toks, i + 1, &s.line_end);
        m.sites.push_back(std::move(s));
      }
    } else if (t.text == ";") {
      pending = Pending::kNone;  // fwd decl / statement end
    } else if (t.text == "{") {
      Scope sc;
      switch (pending) {
        case Pending::kNamespace:
          sc.kind = Scope::Kind::kNamespace;
          break;
        case Pending::kClass:
          sc.kind = Scope::Kind::kClass;
          sc.padded = pending_padded;
          break;
        case Pending::kEnum:
          sc.kind = Scope::Kind::kEnum;
          break;
        case Pending::kNone:
          sc.kind = Scope::Kind::kBlock;
          break;
      }
      sc.open_tok = i;
      scopes.push_back(sc);
      pending = Pending::kNone;
      pending_padded = false;
    } else if (t.text == "}") {
      if (!scopes.empty()) {
        const std::size_t open = scopes.back().open_tok;
        for (AtomicDecl& d : m.decls) {
          if (d.live_end == 0 && d.live_begin >= open &&
              d.name_tok > open) {
            // Declared inside the scope that just closed (members use
            // the class body itself as their live range).
            if (d.member ? d.live_begin == open : d.name_tok > open) {
              d.live_end = i;
            }
          }
        }
        scopes.pop_back();
      }
    }

    // Member-call access sites: receiver . / -> method ( ...
    if ((t.text == "." || t.text == "->") && i + 2 < n &&
        toks[i + 1].kind == Token::Kind::kIdent &&
        toks[i + 2].text == "(") {
      bool known = false;
      const AccessSite::Kind k = detail::method_kind(toks[i + 1].text,
                                                     &known);
      if (known) {
        AccessSite s;
        s.kind = k;
        s.method = toks[i + 1].text;
        s.object = detail::receiver_text(toks, i);
        s.line_begin = toks[i + 1].line;
        s.orders = detail::collect_orders(toks, i + 2, &s.line_end);
        m.sites.push_back(std::move(s));
      }
    }

    // Statement-start declaration scan (class, namespace or block scope).
    const bool stmt_start = prev_text == ";" || prev_text == "{" ||
                            prev_text == "}" || prev_text == ":";
    if (stmt_start && t.kind == Token::Kind::kIdent &&
        (t.text == "std" || t.text == "atomic" || t.text == "static" ||
         t.text == "mutable" || t.text == "constexpr" ||
         t.text == "inline" || t.text == "extern" ||
         t.text == "thread_local" || t.text == "const" ||
         t.text == "alignas")) {
      try_decl(i);
    }

    prev_text = t.text;
  }
  for (AtomicDecl& d : m.decls) {
    if (d.live_end == 0) d.live_end = n;
  }

  // Operator-sugar pass: implicit seq_cst accesses spelled through
  // operators on names declared atomic in a live scope.
  for (const AtomicDecl& d : m.decls) {
    for (std::size_t k = d.live_begin; k < d.live_end && k < n; ++k) {
      if (k == d.name_tok || toks[k].kind != Token::Kind::kIdent ||
          toks[k].text != d.name) {
        continue;
      }
      const std::string prev = k > 0 ? toks[k - 1].text : ";";
      std::size_t after = k + 1;
      bool element = false;  // name[...] — an element of an atomic array
      if (after < n && toks[after].text == "[") {
        int depth = 0;
        while (after < n) {
          if (toks[after].text == "[") ++depth;
          if (toks[after].text == "]" && --depth == 0) {
            ++after;
            break;
          }
          ++after;
        }
        element = true;
      }
      const std::string next = after < n ? toks[after].text : ";";
      if (d.pointer && !element) continue;  // pointer ops aren't atomic

      const bool inc_dec_prev = prev == "++" || prev == "--";
      const bool compound_next = next == "++" || next == "--" ||
                                 next == "+=" || next == "-=" ||
                                 next == "&=" || next == "|=" ||
                                 next == "^=";
      // `name = v` is an implicit seq_cst store — but only flag uses that
      // are unambiguously assignments, not fresh (shadowing) declarations:
      // a type name directly before the identifier means a declaration.
      const bool assign_next =
          next == "=" &&
          (prev == ";" || prev == "{" || prev == "}" || prev == ")" ||
           prev == "." || prev == "->");
      // `x = name` / `return name` read through the implicit conversion —
      // unless a member access follows (then the method call is the site).
      const bool implicit_read =
          !element && (prev == "=" || prev == "return") && next != "." &&
          next != "->" && next != "(" && next != "::" && next != "[";

      if (inc_dec_prev || compound_next || assign_next || implicit_read) {
        AccessSite s;
        s.kind = AccessSite::Kind::kOperator;
        s.method = inc_dec_prev ? prev
                   : compound_next || assign_next
                       ? next
                       : std::string("implicit-load");
        s.object = d.name;
        s.line_begin = toks[k].line;
        s.line_end = toks[k].line;
        m.sites.push_back(std::move(s));
      }
    }
  }

  return m;
}

}  // namespace mwllsc::lint
