// mwllsc-lint reporting: human findings to a stream, machine findings as
// JSON (one finding object per line, the same line-oriented shape the
// repo's other emitters use so the loader below — and CI consumers — can
// parse it without a JSON library), and the loader that round-trips it.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "lint/rules.hpp"

namespace mwllsc::lint {

/// Schema version of the --json report; bump on breaking field changes.
constexpr int kReportSchemaVersion = 1;

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

inline std::string json_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    const char n = s[++i];
    switch (n) {
      case 'n':
        out.push_back('\n');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'u':
        if (i + 4 < s.size()) {
          out.push_back(static_cast<char>(
              std::strtol(s.substr(i + 1, 4).c_str(), nullptr, 16)));
          i += 4;
        }
        break;
      default:
        out.push_back(n);
    }
  }
  return out;
}

inline bool find_int(const std::string& s, const char* key, long* out) {
  const auto pos = s.find(key);
  if (pos == std::string::npos) return false;
  *out = std::strtol(s.c_str() + pos + std::strlen(key), nullptr, 10);
  return true;
}

/// Reads a JSON string value after `key`, honoring escapes.
inline bool find_str(const std::string& s, const char* key,
                     std::string* out) {
  const auto pos = s.find(key);
  if (pos == std::string::npos) return false;
  std::size_t i = pos + std::strlen(key);
  std::string raw;
  for (; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      raw.push_back(s[i]);
      raw.push_back(s[i + 1]);
      ++i;
      continue;
    }
    if (s[i] == '"') break;
    raw.push_back(s[i]);
  }
  *out = json_unescape(raw);
  return true;
}

}  // namespace detail

inline void print_findings(const LintResult& r, std::FILE* out) {
  for (const Finding& f : r.findings) {
    std::fprintf(out, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
    if (!f.snippet.empty()) {
      std::fprintf(out, "    > %s\n", f.snippet.c_str());
    }
    if (!f.hint.empty()) {
      std::fprintf(out, "    hint: %s\n", f.hint.c_str());
    }
  }
  std::fprintf(out,
               "mwllsc_lint: %zu finding%s in %d file%s (%d suppressed)\n",
               r.findings.size(), r.findings.size() == 1 ? "" : "s",
               r.files, r.files == 1 ? "" : "s", r.suppressed);
}

inline std::string report_json(const LintResult& r) {
  std::string out;
  out += "{\n";
  out += "  \"tool\": \"mwllsc_lint\",\n";
  out += "  \"schema_version\": " + std::to_string(kReportSchemaVersion) +
         ",\n";
  out += "  \"files\": " + std::to_string(r.files) + ",\n";
  out += "  \"suppressed\": " + std::to_string(r.suppressed) + ",\n";
  out += "  \"findings\": [\n";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    out += "    {\"file\": \"" + detail::json_escape(f.file) +
           "\", \"line\": " + std::to_string(f.line) +
           ", \"rule\": \"" + detail::json_escape(f.rule) +
           "\", \"message\": \"" + detail::json_escape(f.message) +
           "\", \"hint\": \"" + detail::json_escape(f.hint) +
           "\", \"snippet\": \"" + detail::json_escape(f.snippet) + "\"}";
    out += i + 1 < r.findings.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

inline bool write_report_json(const std::string& path, const LintResult& r,
                              std::string* err = nullptr) {
  std::FILE* f =
      path == "-" ? stdout : std::fopen(path.c_str(), "w");
  if (!f) {
    if (err) *err = "cannot write " + path;
    return false;
  }
  const std::string json = report_json(r);
  std::fwrite(json.data(), 1, json.size(), f);
  if (f != stdout) std::fclose(f);
  return true;
}

/// Parses report_json output back into a LintResult (one finding per
/// line). Tolerant of unknown fields; returns false on a missing header.
inline bool load_report_json(const std::string& text, LintResult* out,
                             std::string* err = nullptr) {
  *out = LintResult{};
  if (text.find("\"tool\": \"mwllsc_lint\"") == std::string::npos) {
    if (err) *err = "not a mwllsc_lint report";
    return false;
  }
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;

    long v = 0;
    if (line.find("\"rule\"") != std::string::npos) {
      Finding f;
      detail::find_str(line, "\"file\": \"", &f.file);
      if (detail::find_int(line, "\"line\": ", &v)) {
        f.line = static_cast<int>(v);
      }
      f.line_end = f.line;
      detail::find_str(line, "\"rule\": \"", &f.rule);
      detail::find_str(line, "\"message\": \"", &f.message);
      detail::find_str(line, "\"hint\": \"", &f.hint);
      detail::find_str(line, "\"snippet\": \"", &f.snippet);
      out->findings.push_back(std::move(f));
    } else if (detail::find_int(line, "\"files\": ", &v)) {
      out->files = static_cast<int>(v);
    } else if (detail::find_int(line, "\"suppressed\": ", &v)) {
      out->suppressed = static_cast<int>(v);
    }
  }
  return true;
}

}  // namespace mwllsc::lint
