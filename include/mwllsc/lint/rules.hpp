// mwllsc-lint rule engine (DESIGN.md §9). The ruleset the repo's
// memory-ordering discipline hangs on:
//
//   R1  every atomic access names an explicit std::memory_order — the
//       defaulted seq_cst (bare load()/store(v)/fetch_add(v)/operator
//       sugar) is banned: an ordering nobody wrote down is an ordering
//       nobody argued about.
//   R2  seq_cst appears only under an in-source ordering contract
//       (mwllsc-ordering annotation naming seq_cst and the reason the
//       total order is needed); a contract that matches no nearby access
//       is itself a finding, so the comments cannot rot.
//   R3  obs/ trace-ring head and slot stores are relaxed only: the rings
//       are single-writer and readers synchronize via thread join, so any
//       stronger store is smuggling synchronization into the hot path.
//   R4  no volatile, __sync_*/__atomic_* builtins, or inline asm — all
//       atomics go through std::atomic where the lint can see them.
//   R5  every shared atomic field (class member or global) is cache-line
//       padded (alignas on the field or its enclosing struct) or carries
//       an explicit padding exemption.
//
// Findings can be silenced with a suppression annotation naming the rule;
// the suppression must sit on the finding's line, the line above it, or a
// line of the (multi-line) access it targets.
#pragma once

#include <string>
#include <vector>

#include "lint/model.hpp"

namespace mwllsc::lint {

struct Finding {
  std::string file;
  int line = 0;
  int line_end = 0;  ///< last line of the site (suppression window)
  std::string rule;  ///< "R1".."R5"
  std::string message;
  std::string hint;
  std::string snippet;
};

struct LintResult {
  std::vector<Finding> findings;
  int files = 0;
  int suppressed = 0;
};

namespace detail {

inline bool is_obs_path(const std::string& path) {
  return path.find("obs/") != std::string::npos ||
         path.find("obs\\") != std::string::npos;
}

inline std::string snippet_of(const SourceFile& f, int line) {
  if (line < 1 || static_cast<std::size_t>(line) > f.lines.size()) {
    return "";
  }
  const std::string& raw = f.lines[static_cast<std::size_t>(line) - 1];
  std::size_t b = raw.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::string s = raw.substr(b);
  if (s.size() > 120) s = s.substr(0, 117) + "...";
  return s;
}

inline std::string site_label(const AccessSite& s) {
  if (s.kind == AccessSite::Kind::kOperator) {
    return "'" + s.object + " " + s.method + "'";
  }
  if (s.kind == AccessSite::Kind::kFence) {
    return "std::" + s.method;
  }
  return "'" + (s.object.empty() ? std::string("<atomic>") : s.object) +
         "." + s.method + "(...)'";
}

/// True when an annotation on line `a` binds to a site spanning
/// [begin, end]: same line, inside the span, or up to kAnnotationWindow
/// lines above it.
inline bool covers(int a, int begin, int end) {
  return a >= begin - kAnnotationWindow && a <= end;
}

}  // namespace detail

inline void run_rules(const FileModel& m, LintResult* out) {
  const SourceFile& src = m.src;
  std::vector<Finding> found;

  auto add = [&](int line, int line_end, const char* rule,
                 std::string message, std::string hint) {
    Finding f;
    f.file = src.path;
    f.line = line;
    f.line_end = line_end < line ? line : line_end;
    f.rule = rule;
    f.message = std::move(message);
    f.hint = std::move(hint);
    f.snippet = detail::snippet_of(src, line);
    found.push_back(std::move(f));
  };

  // ---- R1 / R2 / R3 over access sites ------------------------------
  const bool obs = detail::is_obs_path(src.path);
  for (const AccessSite& s : m.sites) {
    const std::string label = detail::site_label(s);

    if (s.kind == AccessSite::Kind::kOperator) {
      add(s.line_begin, s.line_end, "R1",
          "operator access " + label +
              " on an atomic is an implicit seq_cst operation",
          "rewrite as load()/store()/fetch_*() naming an explicit "
          "std::memory_order");
    } else if (s.orders.empty() && s.kind != AccessSite::Kind::kFence) {
      add(s.line_begin, s.line_end, "R1",
          "atomic access " + label +
              " relies on the defaulted seq_cst memory order",
          "pass an explicit std::memory_order_*; if seq_cst is intended, "
          "say so and add a mwllsc-ordering contract for it");
    }

    bool uses_seq_cst = false;
    bool all_relaxed = true;
    for (const std::string& o : s.orders) {
      if (o == "seq_cst") uses_seq_cst = true;
      if (o != "relaxed") all_relaxed = false;
    }

    if (uses_seq_cst) {
      bool contracted = false;
      for (const Annotation& a : src.annotations) {
        if (a.kind == Annotation::Kind::kOrdering && a.order == "seq_cst" &&
            detail::covers(a.line, s.line_begin, s.line_end)) {
          contracted = true;
          break;
        }
      }
      if (!contracted) {
        add(s.line_begin, s.line_end, "R2",
            "seq_cst access " + label + " has no ordering contract",
            "add 'mwllsc-ordering: seq_cst(<why a total order is "
            "needed>)' in a comment on or just above the access");
      }
    }

    if (obs && !s.orders.empty() && !all_relaxed &&
        s.kind != AccessSite::Kind::kLoad &&
        s.kind != AccessSite::Kind::kFence) {
      std::string used;
      for (const std::string& o : s.orders) {
        if (!used.empty()) used += ",";
        used += o;
      }
      add(s.line_begin, s.line_end, "R3",
          "obs/ single-writer ring store " + label + " uses '" + used +
              "'",
          "trace-ring head/slot stores must be memory_order_relaxed: the "
          "rings are single-writer and readers synchronize via join");
    }
  }

  // ---- R2: contracts that match no access rot into lies ------------
  for (const Annotation& a : src.annotations) {
    if (a.kind != Annotation::Kind::kOrdering) continue;
    bool matched = false;
    for (const AccessSite& s : m.sites) {
      if (!detail::covers(a.line, s.line_begin, s.line_end)) continue;
      for (const std::string& o : s.orders) {
        if (o == a.order) {
          matched = true;
          break;
        }
      }
      if (matched) break;
    }
    if (!matched) {
      add(a.line, a.line, "R2",
          "ordering contract 'mwllsc-ordering: " + a.order +
              "(...)' matches no nearby atomic access",
          "keep the contract adjacent to the access it justifies, and "
          "keep its order in sync with the code");
    }
  }

  // ---- R4 over raw-atomic escape hatches ---------------------------
  for (const RawUse& r : m.raw) {
    add(r.line, r.line, "R4",
        "raw atomic/volatile primitive '" + r.what + "'",
        "use std::atomic<> with an explicit memory_order so the ordering "
        "discipline can see the access");
  }

  // ---- R5 over shared atomic field declarations --------------------
  for (const AtomicDecl& d : m.decls) {
    if (!(d.member || d.global) || d.pointer || d.padded) continue;
    bool exempt = false;
    for (const Annotation& a : src.annotations) {
      if (a.kind == Annotation::Kind::kPadExempt &&
          detail::covers(a.line, d.line, d.line)) {
        exempt = true;
        break;
      }
    }
    if (exempt) continue;
    add(d.line, d.line, "R5",
        "shared atomic field '" + d.name + "' is not cache-line padded",
        "declare it (or its enclosing struct) alignas(64), or annotate "
        "'mwllsc-pad: exempt(<why false sharing is acceptable here>)'");
  }

  // ---- suppression pass --------------------------------------------
  for (Finding& f : found) {
    bool drop = false;
    for (const Annotation& a : src.annotations) {
      if (a.kind != Annotation::Kind::kSuppress) continue;
      if (a.line < f.line - 1 || a.line > f.line_end) continue;
      for (const std::string& r : a.rules) {
        if (r == f.rule) {
          drop = true;
          break;
        }
      }
      if (drop) break;
    }
    if (drop) {
      ++out->suppressed;
    } else {
      out->findings.push_back(std::move(f));
    }
  }
  ++out->files;
}

}  // namespace mwllsc::lint
