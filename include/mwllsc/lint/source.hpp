// mwllsc-lint source layer: loads a file into (a) the raw lines, (b) a
// "code view" with comments, string literals and char literals blanked out
// (same byte offsets, so token line numbers stay true), and (c) the parsed
// in-source lint annotations. The annotation grammar (DESIGN.md §9):
//
//   ordering contract   "mwllsc-ordering:" <order> "(" <reason> ")"
//   padding exemption   "mwllsc-pad:" "exempt" "(" <reason> ")"
//   suppression         "mwllsc-lint-suppress" "(" Rn[,Rm...] ":" <reason> ")"
//
// (terminals quoted here so this very comment does not parse as one)
//
// all inside ordinary //- or /*-comments. An ordering contract binds to the
// access sites whose span it overlaps (same line, up to kWindow lines above
// the site's first line, or any line of a multi-line call); a suppression
// binds to its own line plus the next line when the comment stands alone.
#pragma once

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

namespace mwllsc::lint {

/// How many lines above an access site an annotation still binds to it.
constexpr int kAnnotationWindow = 3;

struct Annotation {
  enum class Kind { kOrdering, kPadExempt, kSuppress };

  Kind kind = Kind::kOrdering;
  std::string order;               ///< kOrdering: "seq_cst", "relaxed", ...
  std::vector<std::string> rules;  ///< kSuppress: {"R1", ...}
  std::string reason;
  int line = 0;       ///< 1-based line the annotation text starts on
  bool own_line = false;  ///< no code precedes the comment on its line
};

struct SourceFile {
  std::string path;
  std::vector<std::string> lines;  ///< raw text, 0-based index = line - 1
  std::string code;                ///< comment/string-blanked, same offsets
  std::vector<Annotation> annotations;
  bool ok = false;
  std::string error;
};

namespace detail {

inline void skip_spaces(const std::string& s, std::size_t& i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
}

inline std::string read_ident(const std::string& s, std::size_t& i) {
  std::string out;
  while (i < s.size() &&
         (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '_')) {
    out.push_back(s[i++]);
  }
  return out;
}

/// Reads "(...)" starting at s[i] == '(' with paren balancing; returns the
/// inner text. On malformed input returns what was found and leaves i past
/// the consumed prefix.
inline std::string read_parens(const std::string& s, std::size_t& i) {
  std::string out;
  if (i >= s.size() || s[i] != '(') return out;
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '(') {
      ++depth;
      if (depth == 1) continue;
    } else if (s[i] == ')') {
      --depth;
      if (depth == 0) {
        ++i;
        return out;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

/// Parses every annotation in one comment's text (which may span lines for
/// block comments; `line` is where the comment starts, `offset_lines` maps
/// an in-comment newline count to source lines).
inline void parse_annotations(const std::string& text, int first_line,
                              bool own_line,
                              std::vector<Annotation>* out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto at = text.find("mwllsc-", pos);
    if (at == std::string::npos) return;
    int line = first_line;
    for (std::size_t k = 0; k < at; ++k) {
      if (text[k] == '\n') ++line;
    }
    std::size_t i = at;
    Annotation a;
    a.line = line;
    a.own_line = own_line;
    if (text.compare(i, 16, "mwllsc-ordering:") == 0) {
      i += 16;
      skip_spaces(text, i);
      a.kind = Annotation::Kind::kOrdering;
      a.order = read_ident(text, i);
      skip_spaces(text, i);
      a.reason = read_parens(text, i);
      if (!a.order.empty()) out->push_back(a);
    } else if (text.compare(i, 11, "mwllsc-pad:") == 0) {
      i += 11;
      skip_spaces(text, i);
      const std::string what = read_ident(text, i);
      skip_spaces(text, i);
      a.kind = Annotation::Kind::kPadExempt;
      a.reason = read_parens(text, i);
      if (what == "exempt") out->push_back(a);
    } else if (text.compare(i, 20, "mwllsc-lint-suppress") == 0) {
      i += 20;
      skip_spaces(text, i);
      const std::string inner = read_parens(text, i);
      const auto colon = inner.find(':');
      const std::string rules =
          colon == std::string::npos ? inner : inner.substr(0, colon);
      a.kind = Annotation::Kind::kSuppress;
      a.reason = colon == std::string::npos ? "" : inner.substr(colon + 1);
      std::string cur;
      for (std::size_t k = 0; k <= rules.size(); ++k) {
        if (k == rules.size() || rules[k] == ',') {
          std::size_t b = 0, e = cur.size();
          while (b < e && std::isspace(static_cast<unsigned char>(cur[b])))
            ++b;
          while (e > b &&
                 std::isspace(static_cast<unsigned char>(cur[e - 1])))
            --e;
          if (e > b) a.rules.push_back(cur.substr(b, e - b));
          cur.clear();
        } else {
          cur.push_back(rules[k]);
        }
      }
      if (!a.rules.empty()) out->push_back(a);
    } else {
      i = at + 7;  // not one of ours ("mwllsc-lint" in prose, etc.)
    }
    pos = i;
  }
}

}  // namespace detail

/// Builds a SourceFile from in-memory text (the unit tests feed snippets
/// this way; load_file below is the disk path).
inline SourceFile scan_source(std::string path, const std::string& text) {
  SourceFile f;
  f.path = std::move(path);
  f.ok = true;

  // Split lines (keeping an entry for a trailing unterminated line).
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      f.lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) f.lines.push_back(cur);

  // One pass building the blanked code view and collecting comments.
  f.code = text;
  enum class St { kCode, kLine, kBlock, kStr, kChar };
  St st = St::kCode;
  int line = 1;
  int comment_line = 1;
  bool comment_own_line = true;
  bool line_has_code = false;
  std::string comment_text;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char n = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          comment_line = line;
          comment_own_line = !line_has_code;
          comment_text.clear();
          f.code[i] = ' ';
          f.code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          comment_line = line;
          comment_own_line = !line_has_code;
          comment_text.clear();
          f.code[i] = ' ';
          f.code[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::kStr;
          line_has_code = true;
        } else if (c == '\'') {
          st = St::kChar;
          line_has_code = true;
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
          line_has_code = true;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          detail::parse_annotations(comment_text, comment_line,
                                    comment_own_line, &f.annotations);
          st = St::kCode;
        } else {
          comment_text.push_back(c);
          f.code[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          detail::parse_annotations(comment_text, comment_line,
                                    comment_own_line, &f.annotations);
          st = St::kCode;
          f.code[i] = ' ';
          f.code[i + 1] = ' ';
          ++i;
        } else {
          comment_text.push_back(c);
          if (c != '\n') f.code[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\' && n != '\0') {
          f.code[i] = ' ';
          f.code[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          f.code[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\' && n != '\0') {
          f.code[i] = ' ';
          f.code[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          f.code[i] = ' ';
        }
        break;
    }
    if (c == '\n') {
      line_has_code = false;
      ++line;
    }
  }
  if (st == St::kLine || st == St::kBlock) {
    detail::parse_annotations(comment_text, comment_line, comment_own_line,
                              &f.annotations);
  }
  return f;
}

inline SourceFile load_file(const std::string& path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (!fp) {
    SourceFile f;
    f.path = path;
    f.ok = false;
    f.error = "cannot open " + path;
    return f;
  }
  std::string text;
  char buf[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), fp)) > 0) {
    text.append(buf, got);
  }
  std::fclose(fp);
  return scan_source(path, text);
}

}  // namespace mwllsc::lint
