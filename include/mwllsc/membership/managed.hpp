// Managed multiword LL/SC: the protocol object plus a process lifecycle
// (DESIGN.md §10). Threads join() to obtain a Session — an RAII pid lease
// drawn from a SlotRegistry — and call ll/sc/vl through it; retire (or
// crash) returns the pid to the pool. The managed object owns the
// crash-reclaim policy: reclaim_scan() recycles dead holders' slots and
// settles their announce-slot help obligations (core reclaim_pid) so the
// survivors' 4W+12 step bound is unaffected by the corpse.
//
// Graceful degradation: when every slot is held, join() runs a bounded
// number of orphan-recycling retries and then falls over to a *degraded*
// session — a pid reserved at construction whose LL..SC window is
// serialized by a mutex. Degraded sessions keep the exact LL/SC/VL
// semantics (they run the same protocol object, so they linearize with
// everyone else on the one variable), but trade away the two properties
// the paper buys: they are not wait-free against each other, and a holder
// that crashes inside the LL..SC window wedges the degraded path (never
// the wait-free one). The jp protocol itself never blocks on the lock.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>
#include <utility>

#include "membership/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"
#include "util/thread_safety.hpp"

namespace mwllsc::membership {

/// Point-in-time view of the lifecycle counters (mirrors the
/// mwllsc_membership_* metrics series).
struct MembershipSnapshot {
  std::uint64_t joins = 0;           ///< wait-free slot claims
  std::uint64_t degraded_joins = 0;  ///< joins that fell over to the lock
  std::uint64_t join_retries = 0;    ///< exhaustion retries (scan + re-claim)
  std::uint64_t retires = 0;         ///< clean releases
  std::uint64_t crash_reclaims = 0;  ///< dead holders' slots recycled
  std::uint64_t scans = 0;           ///< reclaim sweeps run
  std::uint32_t active = 0;          ///< slots currently held (approximate)
  std::uint32_t capacity = 0;        ///< slot pool size
};

/// The protocol object (any type with the MwLLSC member surface) wrapped
/// with join/retire/crash lifecycle. Constructed with `slots` concurrent
/// wait-free sessions over `words` words; pid `slots` is reserved for the
/// degraded path.
template <class Impl>
class ManagedMwLLSC {
 public:
  /// RAII pid lease. Move-only; destruction retires. ll/sc/vl mirror the
  /// protocol's contract. abandon() is the crash-stop seam: the session
  /// walks away without cleanup and the slot waits for reclaim_scan().
  class Session {
   public:
    Session() = default;
    Session(Session&& o) noexcept { *this = std::move(o); }
    Session& operator=(Session&& o) noexcept MWLLSC_NO_TSA {
      if (this != &o) {
        retire();
        parent_ = o.parent_;
        slot_ = std::move(o.slot_);
        degraded_ = o.degraded_;
        lock_held_ = o.lock_held_;
        o.parent_ = nullptr;
        o.lock_held_ = false;
      }
      return *this;
    }
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;
    ~Session() { retire(); }

    bool valid() const { return parent_ != nullptr; }
    bool degraded() const { return degraded_; }
    std::uint32_t pid() const {
      return degraded_ ? parent_->reserved_pid() : slot_.id();
    }

    void ll(std::uint64_t* out) MWLLSC_NO_TSA {
      assert(valid());
      if (degraded_) {
        // The lock spans LL..SC so the reserved pid's link can't be
        // clobbered by another degraded session.
        if (!lock_held_) {
          parent_->degraded_mu_.lock();
          lock_held_ = true;
        }
        parent_->impl_.ll(parent_->reserved_pid(), out);
        return;
      }
      slot_.beat();
      parent_->impl_.ll(slot_.id(), out);
    }

    bool sc(const std::uint64_t* in) MWLLSC_NO_TSA {
      assert(valid());
      if (degraded_) {
        if (!lock_held_) return false;  // SC without a prior LL: no link
        const bool ok = parent_->impl_.sc(parent_->reserved_pid(), in);
        lock_held_ = false;
        parent_->degraded_mu_.unlock();
        return ok;
      }
      slot_.beat();
      return parent_->impl_.sc(slot_.id(), in);
    }

    bool vl() {
      assert(valid());
      if (degraded_) {
        return lock_held_ && parent_->impl_.vl(parent_->reserved_pid());
      }
      slot_.beat();
      return parent_->impl_.vl(slot_.id());
    }

    /// Liveness signal for long idle stretches (ll/sc/vl already beat).
    void beat() {
      if (parent_ && !degraded_) slot_.beat();
    }

    /// Clean retirement. Returns false if the slot had been reclaimed out
    /// from under this session (heartbeat false positive — the pid already
    /// belongs to someone else and this session's link is gone).
    bool retire() MWLLSC_NO_TSA {
      if (!parent_) return true;
      ManagedMwLLSC* p = parent_;
      parent_ = nullptr;
      if (degraded_) {
        if (!lock_held_) p->degraded_mu_.lock();
        p->trace_.emit(obs::EventKind::kProcRetire, p->reserved_pid(), 0, 1);
        p->degraded_mu_.unlock();
        lock_held_ = false;
        p->c_.retires.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      const std::uint32_t id = slot_.id();
      const std::uint64_t gen = slot_.generation();
      // Emit before release: after the release CAS the pid may instantly
      // be claimed by another thread, and pid streams are single-writer.
      p->trace_.emit(obs::EventKind::kProcRetire, id, gen);
      const bool ok = slot_.release();
      p->c_.retires.fetch_add(1, std::memory_order_relaxed);
      return ok;
    }

    /// Crash-stop seam: walk away mid-whatever. A wait-free session's slot
    /// goes ORPHANED for the reclaimer; a degraded session releases the
    /// lock (a *real* crash inside the degraded window would wedge the
    /// degraded path — that is the documented cost of degradation, and
    /// simulating it would just deadlock the test).
    void abandon() MWLLSC_NO_TSA {
      if (!parent_) return;
      ManagedMwLLSC* p = parent_;
      parent_ = nullptr;
      if (degraded_) {
        if (lock_held_) {
          p->degraded_mu_.unlock();
          lock_held_ = false;
        }
        return;
      }
      slot_.abandon();
    }

   private:
    friend class ManagedMwLLSC;
    Session(ManagedMwLLSC* parent, ProcessSlot slot)
        : parent_(parent), slot_(std::move(slot)) {}
    explicit Session(ManagedMwLLSC* parent)
        : parent_(parent), degraded_(true) {}

    ManagedMwLLSC* parent_ = nullptr;
    ProcessSlot slot_;
    bool degraded_ = false;
    bool lock_held_ = false;
  };

  ManagedMwLLSC(std::uint32_t slots, std::uint32_t words,
                std::uint32_t suspect_scans = 3,
                std::uint32_t join_retries = 2)
      : slots_(slots),
        join_retries_(join_retries),
        impl_(slots + 1, words),
        reg_(slots, suspect_scans) {
    assert(slots >= 1);
  }

  /// Acquires a session. Wait-free while slots are available (one bounded
  /// claim pass). Under exhaustion: up to `join_retries` rounds of
  /// orphan-recycling scans (cooperatively-crashed holders are swept;
  /// heartbeat-stale ones are NOT — condemning a live-but-quiet holder
  /// takes deliberately spaced reclaim_scan() calls, never a join burst),
  /// then the degraded lock-serialized session. Never fails, never blocks.
  Session join() {
    for (std::uint32_t attempt = 0;; ++attempt) {
      const std::uint32_t s = reg_.try_acquire();
      if (s != SlotRegistry::kNone) {
        // Sync the pid's private protocol state with however the previous
        // incarnation left the announce word (retired or reclaimed).
        impl_.rebind_pid(s);
        reg_.beat(s);
        c_.joins.fetch_add(1, std::memory_order_relaxed);
        trace_.emit(obs::EventKind::kProcJoin, s, reg_.generation(s), 0);
        return Session(this, ProcessSlot(&reg_, s));
      }
      if (attempt >= join_retries_) break;
      c_.join_retries.fetch_add(1, std::memory_order_relaxed);
      reclaim_scan(/*include_stale=*/false);
    }
    c_.degraded_joins.fetch_add(1, std::memory_order_relaxed);
    {
      // Serialize the emit: degraded sessions share the reserved pid's
      // trace stream, which is single-writer by contract.
      util::MutexLock g(degraded_mu_);
      trace_.emit(obs::EventKind::kProcJoin, reserved_pid(), 0, 1);
    }
    return Session(this);
  }

  /// Reclaim sweep (see SlotRegistry::scan). For every dead holder this
  /// settles the pid's announce-slot obligations — completing a posted
  /// donation's adoption or withdrawing a dangling announce — before the
  /// slot can be re-claimed, so a new holder inherits a quiescent pid and
  /// survivors' help bookkeeping stays exact. Call it from a maintenance
  /// thread with spacing >> one op (heartbeat staleness is judged across
  /// `suspect_scans` consecutive calls), or with include_stale=false for
  /// an always-safe orphan-only sweep.
  std::uint32_t reclaim_scan(bool include_stale = true) {
    c_.scans.fetch_add(1, std::memory_order_relaxed);
    return reg_.scan(
        [this](std::uint32_t s) {
          // Safe to touch pid s here: the slot is RECLAIMING, so the dead
          // holder is gone and no new holder can claim it until the scan
          // frees it — the pid stream stays single-writer.
          impl_.reclaim_pid(s);
          c_.crash_reclaims.fetch_add(1, std::memory_order_relaxed);
        },
        include_stale);
  }

  std::uint32_t words() const { return impl_.words(); }
  std::uint32_t slots() const { return slots_; }
  std::uint32_t reserved_pid() const { return slots_; }

  core::OpStatsSnapshot stats() const { return impl_.stats(); }

  util::Footprint footprint() const {
    util::Footprint f = impl_.footprint();
    f.add("membership slot registry (slots x 1 line)", reg_.slot_bytes());
    return f;
  }

  MembershipSnapshot membership() const {
    MembershipSnapshot s;
    s.joins = c_.joins.load(std::memory_order_relaxed);
    s.degraded_joins = c_.degraded_joins.load(std::memory_order_relaxed);
    s.join_retries = c_.join_retries.load(std::memory_order_relaxed);
    s.retires = c_.retires.load(std::memory_order_relaxed);
    s.crash_reclaims = c_.crash_reclaims.load(std::memory_order_relaxed);
    s.scans = c_.scans.load(std::memory_order_relaxed);
    s.active = reg_.active();
    s.capacity = reg_.capacity();
    return s;
  }

  /// Publishes the lifecycle counters as mwllsc_membership_* series.
  void export_metrics(obs::MetricsRegistry& m,
                      const std::string& labels) const {
    using obs::MetricsRegistry;
    const MembershipSnapshot s = membership();
    m.set_counter(MetricsRegistry::labeled("mwllsc_membership_joins_total",
                                           labels),
                  s.joins);
    m.set_counter(MetricsRegistry::labeled(
                      "mwllsc_membership_degraded_joins_total", labels),
                  s.degraded_joins);
    m.set_counter(MetricsRegistry::labeled(
                      "mwllsc_membership_join_retries_total", labels),
                  s.join_retries);
    m.set_counter(MetricsRegistry::labeled("mwllsc_membership_retires_total",
                                           labels),
                  s.retires);
    m.set_counter(MetricsRegistry::labeled(
                      "mwllsc_membership_crash_reclaims_total", labels),
                  s.crash_reclaims);
    m.set_counter(MetricsRegistry::labeled("mwllsc_membership_scans_total",
                                           labels),
                  s.scans);
    m.set_gauge(MetricsRegistry::labeled("mwllsc_membership_active", labels),
                static_cast<double>(s.active));
    m.set_gauge(MetricsRegistry::labeled("mwllsc_membership_capacity",
                                         labels),
                static_cast<double>(s.capacity));
  }

  /// Binds both the lifecycle events and the protocol's own events to the
  /// same sink under the same variable id.
  void set_trace(obs::TraceSink* sink, std::uint32_t var) {
    trace_.bind(sink, var);
    impl_.set_trace(sink, var);
  }

  Impl& impl() { return impl_; }
  SlotRegistry& registry() { return reg_; }

 private:
  /// Lifecycle counters, one line so the hot protocol state never false-
  /// shares with bookkeeping (alignas satisfies the R5 padding rule for
  /// every member).
  struct alignas(64) Counters {
    std::atomic<std::uint64_t> joins{0};
    std::atomic<std::uint64_t> degraded_joins{0};
    std::atomic<std::uint64_t> join_retries{0};
    std::atomic<std::uint64_t> retires{0};
    std::atomic<std::uint64_t> crash_reclaims{0};
    std::atomic<std::uint64_t> scans{0};
  };

  const std::uint32_t slots_;
  const std::uint32_t join_retries_;
  Impl impl_;
  SlotRegistry reg_;
  util::Mutex degraded_mu_;  ///< spans a degraded session's LL..SC window
  Counters c_;
  obs::TraceHandle trace_;
};

}  // namespace mwllsc::membership
