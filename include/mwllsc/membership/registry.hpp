// Wait-free process registration for the multiword LL/SC protocol
// (DESIGN.md §10). The core protocol is pid-indexed and fixed-N; this
// layer turns the fixed pid range into a pool real threads check slots out
// of and back into, so "N processes" becomes "at most N *concurrent*
// sessions" drawn from an unbounded thread population.
//
// Each slot is a generation-tagged word — state(2) | generation(62) — plus
// a heartbeat counter, both on the slot's own cache line. The lifecycle is
// a four-state machine, every transition bumping the generation so a slot
// handle from one incarnation can never act on a later one:
//
//     FREE --claim--> ACTIVE --release--> FREE
//                       |  \--abandon--> ORPHANED --reclaim--> FREE
//                       \--heartbeat stale--> RECLAIMING --> FREE
//
// Claiming is a bounded single pass of CAS attempts over the array (at
// most `capacity` CASes, wait-free); release is one CAS. Crash-stopped
// holders are detected two ways:
//   * cooperatively — abandon() marks the slot ORPHANED (the test/bench
//     seam that *simulates* a crash deterministically);
//   * by heartbeat — scan() watches each ACTIVE slot's heartbeat and
//     declares a holder dead after `suspect_scans` consecutive scans
//     without a beat. This is inherently heuristic: the caller must space
//     scans so that (suspect_scans x spacing) comfortably exceeds any
//     legitimate quiet period, and live holders should beat() when idle.
//     A holder whose release CAS fails learns it was presumed dead.
// Reclamation is two-phase: the scanner CASes the slot to RECLAIMING
// (exactly one scanner wins), runs the caller's cleanup — which settles
// the dead process's announce-slot help obligations (core reclaim_pid) so
// survivors' 4W+12 bound holds — and only then frees the slot.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/thread_safety.hpp"

namespace mwllsc::membership {

class SlotRegistry {
 public:
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  static constexpr std::uint64_t kFree = 0;
  static constexpr std::uint64_t kActive = 1;
  static constexpr std::uint64_t kOrphaned = 2;
  static constexpr std::uint64_t kReclaiming = 3;

  explicit SlotRegistry(std::uint32_t capacity, std::uint32_t suspect_scans = 3)
      : cap_(capacity),
        suspect_scans_(suspect_scans < 1 ? 1 : suspect_scans),
        slots_(new Slot[capacity]),
        seen_(capacity) {
    assert(capacity >= 1);
  }

  std::uint32_t capacity() const { return cap_; }

  /// Shared bytes the slot array occupies (for footprint accounting).
  std::size_t slot_bytes() const { return cap_ * sizeof(Slot); }

  /// One bounded pass of claim attempts, rotating the start index so
  /// concurrent joiners spread out. Returns the claimed slot id or kNone —
  /// at most `capacity` CAS attempts, no waiting, no retry loop per slot
  /// (a lost race just moves on; the caller owns the retry policy).
  std::uint32_t try_acquire() {
    const std::uint32_t start = rr_.fetch_add(1, std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < cap_; ++i) {
      const std::uint32_t s = (start + i) % cap_;
      std::uint64_t w = slots_[s].word.load(std::memory_order_relaxed);
      if (state_of(w) != kFree) continue;
      // Acquire pairs with the releasing/reclaiming transition that freed
      // the slot: the new holder sees the previous incarnation's cleanup.
      if (slots_[s].word.compare_exchange_strong(
              w, pack(kActive, gen_of(w) + 1), std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        // No staleness reset here: scan() re-keys its suspicion counter on
        // the generation, which this claim just bumped. Touching seen_
        // would race the scanner (seen_ is scan_mu_-guarded).
        return s;
      }
    }
    return kNone;
  }

  /// Releases a held slot. Returns false if the slot was reclaimed out
  /// from under the holder (a heartbeat false positive — see the header
  /// comment; the holder must treat its session as crashed, not retired).
  bool release(std::uint32_t s, std::uint64_t gen) {
    std::uint64_t w = pack(kActive, gen);
    return slots_[s].word.compare_exchange_strong(
        w, pack(kFree, gen + 1), std::memory_order_acq_rel,
        std::memory_order_relaxed);
  }

  /// Cooperative crash simulation: the holder walks away without cleaning
  /// up, leaving the slot for the reclaimer. Returns false if a concurrent
  /// reclaim already took the slot.
  bool abandon(std::uint32_t s, std::uint64_t gen) {
    std::uint64_t w = pack(kActive, gen);
    return slots_[s].word.compare_exchange_strong(
        w, pack(kOrphaned, gen + 1), std::memory_order_acq_rel,
        std::memory_order_relaxed);
  }

  /// Holder liveness signal. Call once per operation (the managed layer
  /// does) and periodically when idle.
  void beat(std::uint32_t s) {
    slots_[s].heartbeat.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t generation(std::uint32_t s) const {
    return gen_of(slots_[s].word.load(std::memory_order_relaxed));
  }

  std::uint64_t state(std::uint32_t s) const {
    return state_of(slots_[s].word.load(std::memory_order_relaxed));
  }

  /// Approximate count of held slots (a metrics gauge, not a decision
  /// input — it races with claims and releases by design).
  std::uint32_t active() const {
    std::uint32_t n = 0;
    for (std::uint32_t s = 0; s < cap_; ++s) {
      const std::uint64_t st =
          state_of(slots_[s].word.load(std::memory_order_relaxed));
      if (st == kActive || st == kOrphaned) ++n;
    }
    return n;
  }

  /// Reclaim sweep. Recycles every ORPHANED slot, and — when
  /// `include_stale` — every ACTIVE slot whose heartbeat has not moved for
  /// `suspect_scans` consecutive scans. For each dead slot, `on_dead(slot)`
  /// runs strictly between the RECLAIMING transition and the FREE one, so
  /// cleanup (settling the dead pid's protocol obligations) is complete
  /// before any new holder can claim the slot. Returns slots reclaimed.
  ///
  /// Join-path callers pass include_stale=false: orphan recycling is
  /// always safe, but staleness needs scan *spacing* the caller controls —
  /// back-to-back scans from a burst of joiners must not be able to
  /// condemn a live-but-quiet holder.
  template <class OnDead>
  std::uint32_t scan(OnDead&& on_dead, bool include_stale = true) {
    util::MutexLock g(scan_mu_);
    std::uint32_t reclaimed = 0;
    for (std::uint32_t s = 0; s < cap_; ++s) {
      std::uint64_t w = slots_[s].word.load(std::memory_order_acquire);
      const std::uint64_t st = state_of(w);
      if (st == kOrphaned) {
        if (begin_reclaim(s, w)) {
          on_dead(s);
          finish_reclaim(s, gen_of(w) + 1);
          ++reclaimed;
        }
        continue;
      }
      if (st != kActive) {
        seen_[s].stale = 0;
        continue;
      }
      const std::uint64_t hb =
          slots_[s].heartbeat.load(std::memory_order_relaxed);
      ScanState& seen = seen_[s];
      if (seen.gen != gen_of(w) || seen.hb != hb) {
        seen.gen = gen_of(w);
        seen.hb = hb;
        seen.stale = 0;
        continue;
      }
      if (!include_stale) continue;
      if (++seen.stale < suspect_scans_) continue;
      if (begin_reclaim(s, w)) {
        on_dead(s);
        finish_reclaim(s, gen_of(w) + 1);
        ++reclaimed;
      }
    }
    return reclaimed;
  }

 private:
  static std::uint64_t pack(std::uint64_t state, std::uint64_t gen) {
    return (gen << 2) | state;
  }
  static std::uint64_t state_of(std::uint64_t w) { return w & 3; }
  static std::uint64_t gen_of(std::uint64_t w) { return w >> 2; }

  bool begin_reclaim(std::uint32_t s, std::uint64_t expect) {
    // Acq_rel: exactly one scanner wins the transition, and it observes
    // everything the dead holder published before its last transition.
    return slots_[s].word.compare_exchange_strong(
        expect, pack(kReclaiming, gen_of(expect) + 1),
        std::memory_order_acq_rel, std::memory_order_relaxed);
  }

  // Caller (scan) holds scan_mu_, so the seen_ write is serialized.
  void finish_reclaim(std::uint32_t s, std::uint64_t gen_mid) {
    seen_[s].stale = 0;
    // Release publishes the cleanup (core reclaim_pid) to the next
    // claimant's acquire CAS.
    slots_[s].word.store(pack(kFree, gen_mid + 1),
                         std::memory_order_release);
  }

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> word{pack(kFree, 0)};
    std::atomic<std::uint64_t> heartbeat{0};
  };

  /// Per-slot staleness bookkeeping, guarded by scan_mu_ (scans are a cold
  /// maintenance path; serializing them keeps the suspicion counters
  /// race-free without per-slot atomics).
  struct ScanState {
    std::uint64_t gen = ~std::uint64_t{0};
    std::uint64_t hb = 0;
    std::uint32_t stale = 0;
  };

  const std::uint32_t cap_;
  const std::uint32_t suspect_scans_;
  std::unique_ptr<Slot[]> slots_;
  // mwllsc-pad: exempt(cold claim-start rotor, bumped once per join
  // attempt; nothing hot shares its line)
  std::atomic<std::uint32_t> rr_{0};
  util::Mutex scan_mu_;
  std::vector<ScanState> seen_ MWLLSC_GUARDED_BY(scan_mu_);
};

/// RAII slot guard: releases the slot on destruction. Move-only; the test
/// and bench seam abandon() turns the guard into a simulated crash (the
/// slot is left ORPHANED for the reclaimer and the destructor does
/// nothing).
class ProcessSlot {
 public:
  ProcessSlot() = default;
  ProcessSlot(SlotRegistry* reg, std::uint32_t slot)
      : reg_(reg), slot_(slot), gen_(reg->generation(slot)) {}

  ProcessSlot(ProcessSlot&& o) noexcept { *this = std::move(o); }
  ProcessSlot& operator=(ProcessSlot&& o) noexcept {
    if (this != &o) {
      release();
      reg_ = o.reg_;
      slot_ = o.slot_;
      gen_ = o.gen_;
      o.reg_ = nullptr;
      o.slot_ = SlotRegistry::kNone;
    }
    return *this;
  }
  ProcessSlot(const ProcessSlot&) = delete;
  ProcessSlot& operator=(const ProcessSlot&) = delete;

  ~ProcessSlot() { release(); }

  bool valid() const { return reg_ != nullptr; }
  std::uint32_t id() const { return slot_; }
  std::uint64_t generation() const { return gen_; }

  void beat() {
    if (reg_) reg_->beat(slot_);
  }

  /// Returns false on a heartbeat false positive (the slot was reclaimed
  /// out from under us); the holder must not reuse the pid either way.
  bool release() {
    if (!reg_) return true;
    const bool ok = reg_->release(slot_, gen_);
    reg_ = nullptr;
    slot_ = SlotRegistry::kNone;
    return ok;
  }

  /// Simulated crash: walk away without releasing.
  void abandon() {
    if (!reg_) return;
    reg_->abandon(slot_, gen_);
    reg_ = nullptr;
    slot_ = SlotRegistry::kNone;
  }

 private:
  SlotRegistry* reg_ = nullptr;
  std::uint32_t slot_ = SlotRegistry::kNone;
  std::uint64_t gen_ = 0;
};

}  // namespace mwllsc::membership
