// Exporters and the offline trace checker (DESIGN.md §8).
//
// * write_chrome_trace — Chrome-trace / Perfetto JSON of a collected
//   TraceData: one track per process id, LL and SC rendered as complete
//   ("X") duration events with their inner detail in args, the remaining
//   protocol events as instants, and flow events linking every
//   help_install to the ll_helped / ll_rescue that consumed the donated
//   buffer on the helpee's track. One traceEvents entry per line, so the
//   loader below can parse it without a JSON library.
//
// * load_chrome_trace — reads that exporter's output back into a
//   TraceData (X events are expanded to their start/retry/end markers in
//   place), making an exported file a third correctness oracle: the same
//   checker runs on live rings and on a file from another machine.
//
// * check_trace — replays per-pid event streams and re-verifies, from
//   events alone: the 4W+12 LL step bound and zero defensive retries for
//   every variable labelled as the paper's protocol ("jp…"), exactly one
//   bank write per successful SC (invariant I2) for every variable that
//   emits bank writes, and the <= 3 LL/SC rounds bound of the apps-layer
//   help-all construction. Membership lifecycle events are cross-checked
//   too: pid leases must not overlap (join while live), retire must not
//   leave an LL window open, and a retired/reclaimed pid must not emit
//   protocol events until its next join — traces from before the
//   lifecycle layer carry no such events and are checked exactly as
//   before. Ring truncation is tolerated as a missing *prefix* (orphan
//   closes/bank-writes are skipped while dropped > 0); sampled traces
//   skip sequencing checks entirely.
//
// * write_prometheus / write_metrics_json — text + JSON export of a
//   MetricsRegistry.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mwllsc::obs {

inline constexpr std::uint32_t kTraceSchemaVersion = 2;

// ------------------------------------------------------------------ checker

struct TraceCheckResult {
  std::uint64_t lls_checked = 0;    ///< completed LL windows replayed
  std::uint64_t max_ll_steps = 0;   ///< worst derived step count (jp vars)
  std::uint64_t sc_commits = 0;
  std::uint64_t bank_writes = 0;
  std::uint64_t applies_checked = 0;
  std::uint64_t joins = 0;          ///< proc_join events (membership layer)
  std::uint64_t retires = 0;
  std::uint64_t crash_reclaims = 0;
  bool sampled = false;             ///< sequencing checks skipped
  bool truncated = false;           ///< some ring evicted its prefix
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

/// Derived step count for one completed LL, from the observed events: each
/// round costs announce/link/copy/validate/announce-check = W+4 accesses,
/// a rescue adds the W+1 donated copy + check (rounded to W here, on the
/// conservative side of the paper's own constant accounting).
inline std::uint64_t ll_steps_of(std::uint32_t w, std::uint32_t rounds,
                                 bool rescued) {
  return static_cast<std::uint64_t>(rounds) * (w + 4) + (rescued ? w : 0);
}

inline TraceCheckResult check_trace(const TraceData& d) {
  TraceCheckResult r;
  if (d.sample_shift > 0) {
    // Sampling drops arbitrary events; sequencing proofs are meaningless.
    r.sampled = true;
    return r;
  }

  // Pre-scan: which vars ever emit bank writes? Substrates without a
  // retirement write (lock) are exempt from the I2 pairing check.
  std::map<std::uint32_t, bool> var_has_bank;
  for (const auto& stream : d.per_pid) {
    for (const TraceEvent& e : stream) {
      if (static_cast<EventKind>(e.kind) == EventKind::kBankWrite) {
        var_has_bank[e.var] = true;
      }
    }
  }

  char msg[256];
  for (std::size_t pid = 0; pid < d.per_pid.size(); ++pid) {
    const bool trunc = pid < d.dropped.size() && d.dropped[pid] > 0;
    if (trunc) r.truncated = true;

    struct VarState {
      bool in_ll = false;
      std::uint32_t retries = 0;
      bool commit_open = false;  ///< sc_commit seen, bank_write pending
      bool any_commit = false;
    };
    std::map<std::uint32_t, VarState> vs;

    // Membership lifecycle (traces without lifecycle events stay in
    // kUnknown forever and get no lifecycle checks — full backward
    // compatibility). Degraded join/retire pairs (arg = 1) share one
    // reserved pid across overlapping sessions, so they are counted but
    // never drive the liveness state machine.
    enum class Live { kUnknown, kLive, kDead };
    Live live = Live::kUnknown;
    bool dead_use_reported = false;

    for (const TraceEvent& e : d.per_pid[pid]) {
      const auto k = static_cast<EventKind>(e.kind);

      if (k == EventKind::kProcJoin) {
        ++r.joins;
        if (e.arg != 1) {  // wait-free slot claim (degraded joins overlap)
          if (live == Live::kLive) {
            std::snprintf(msg, sizeof(msg),
                          "pid %zu: proc_join while the pid is already "
                          "live (no retire/reclaim between leases)",
                          pid);
            r.violations.push_back(msg);
          }
          live = Live::kLive;
        }
        // A new incarnation inherits a quiescent pid: drop half-open
        // windows left by the previous holder.
        vs.clear();
        dead_use_reported = false;
        continue;
      }
      if (k == EventKind::kProcRetire) {
        ++r.retires;
        if (e.arg != 1) {
          if (live == Live::kDead) {
            std::snprintf(msg, sizeof(msg),
                          "pid %zu: proc_retire of a pid that is not live",
                          pid);
            r.violations.push_back(msg);
          }
          if (!trunc) {
            for (const auto& [var, v2] : vs) {
              if (v2.in_ll) {
                std::snprintf(msg, sizeof(msg),
                              "pid %zu var %u: retired with an open LL "
                              "window",
                              pid, var);
                r.violations.push_back(msg);
              }
            }
          }
          live = Live::kDead;
        }
        vs.clear();
        continue;
      }
      if (k == EventKind::kProcCrashReclaim) {
        // Emitted by the reclaimer into the dead pid's stream (the slot
        // word hand-off keeps the stream single-writer). The reclaimer
        // settled every help obligation, so the pid starts over clean.
        ++r.crash_reclaims;
        live = Live::kDead;
        vs.clear();
        continue;
      }
      if (live == Live::kDead && !dead_use_reported) {
        std::snprintf(msg, sizeof(msg),
                      "pid %zu var %u: %s after retire/reclaim without a "
                      "proc_join",
                      pid, e.var, event_name(k));
        r.violations.push_back(msg);
        dead_use_reported = true;  // one report per gap, not per event
      }

      VarState& v = vs[e.var];
      const TraceData::VarInfo* info = d.var_info(e.var);
      const std::uint32_t w = info ? info->words : 0;
      const bool jp = info && info->label.rfind("jp", 0) == 0;

      switch (k) {
        case EventKind::kLlStart:
          if (v.in_ll) {
            std::snprintf(msg, sizeof(msg),
                          "pid %zu var %u: ll_start inside an open LL",
                          pid, e.var);
            r.violations.push_back(msg);
          }
          v.in_ll = true;
          v.retries = 0;
          break;
        case EventKind::kLlRetry:
          if (v.in_ll) {
            ++v.retries;
            if (jp) {
              std::snprintf(msg, sizeof(msg),
                            "pid %zu var %u: defensive LL retry on a jp "
                            "variable (help guarantee broken)",
                            pid, e.var);
              r.violations.push_back(msg);
            }
          }
          break;
        case EventKind::kLlFast:
        case EventKind::kLlRescue: {
          if (!v.in_ll) {
            if (!trunc) {
              std::snprintf(msg, sizeof(msg),
                            "pid %zu var %u: %s without ll_start", pid,
                            e.var, event_name(k));
              r.violations.push_back(msg);
            }
            break;  // orphan close from an evicted prefix
          }
          v.in_ll = false;
          ++r.lls_checked;
          const std::uint64_t steps =
              ll_steps_of(w, v.retries + 1, k == EventKind::kLlRescue);
          if (jp) {
            if (steps > r.max_ll_steps) r.max_ll_steps = steps;
            if (steps > 4ull * w + 12) {
              std::snprintf(msg, sizeof(msg),
                            "pid %zu var %u: LL took %" PRIu64
                            " derived steps > 4W+12 = %u (W=%u, retries=%u)",
                            pid, e.var, steps, 4 * w + 12, w, v.retries);
              r.violations.push_back(msg);
            }
          }
          break;
        }
        case EventKind::kScCommit:
          if (v.commit_open && var_has_bank[e.var]) {
            std::snprintf(msg, sizeof(msg),
                          "pid %zu var %u: sc_commit with no bank_write "
                          "since the previous commit (I2)",
                          pid, e.var);
            r.violations.push_back(msg);
          }
          v.commit_open = true;
          v.any_commit = true;
          ++r.sc_commits;
          break;
        case EventKind::kBankWrite:
          if (v.commit_open) {
            v.commit_open = false;
          } else if (v.any_commit || !trunc) {
            std::snprintf(msg, sizeof(msg),
                          "pid %zu var %u: bank_write without a preceding "
                          "sc_commit (I2)",
                          pid, e.var);
            r.violations.push_back(msg);
          }
          ++r.bank_writes;
          break;
        case EventKind::kApplyCommit:
          ++r.applies_checked;
          if (e.arg > 3) {
            std::snprintf(msg, sizeof(msg),
                          "pid %zu var %u: apply took %u LL/SC rounds > 3 "
                          "(help-all bound)",
                          pid, e.var, e.arg);
            r.violations.push_back(msg);
          }
          break;
        default:
          break;  // instants that carry no protocol obligation
      }
    }
  }
  return r;
}

// ------------------------------------------------------ chrome-trace write

namespace detail {

/// Key for matching a donation to its consumption: (var, helpee pid, seq).
inline std::uint64_t flow_id(std::uint32_t var, std::uint32_t pid,
                             std::uint64_t seq) {
  return (seq & ((std::uint64_t{1} << 40) - 1)) << 24 |
         (static_cast<std::uint64_t>(var & 0x3ff) << 14) | (pid & 0x3fff);
}

inline double us_of(const TraceData& d, std::uint64_t tsc) {
  return d.ns_of(tsc) / 1000.0;
}

}  // namespace detail

/// Writes the collected trace as Chrome-trace JSON (open in Perfetto /
/// chrome://tracing). Returns false and fills *err on I/O failure.
inline bool write_chrome_trace(const std::string& path, const TraceData& d,
                               std::string* err = nullptr) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::fprintf(f, "{\n\"traceEvents\": [\n");
  bool first = true;
  auto sep = [&] {
    if (!first) std::fprintf(f, ",\n");
    first = false;
  };

  // Track names.
  for (std::size_t pid = 0; pid < d.per_pid.size(); ++pid) {
    sep();
    std::fprintf(f,
                 "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,"
                 "\"tid\":%zu,\"args\":{\"name\":\"process %zu\"}}",
                 pid, pid);
  }

  // First pass: where does each donation land? (flow targets)
  std::map<std::uint64_t, std::uint64_t> consume_tsc;  // flow id -> tsc
  for (const auto& stream : d.per_pid) {
    for (const TraceEvent& e : stream) {
      const auto k = static_cast<EventKind>(e.kind);
      if (k == EventKind::kLlHelped || k == EventKind::kLlRescue) {
        consume_tsc[detail::flow_id(e.var, e.pid, e.tag)] = e.tsc;
      }
    }
  }

  for (std::size_t pid = 0; pid < d.per_pid.size(); ++pid) {
    const auto& stream = d.per_pid[pid];
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const TraceEvent& e = stream[i];
      const auto k = static_cast<EventKind>(e.kind);

      // LL / SC windows become "X" complete events; their close marker is
      // consumed here, inner instants fall through to the instant case on
      // later iterations (they sit inside the duration visually).
      if (k == EventKind::kLlStart || k == EventKind::kScAttempt) {
        const bool is_ll = k == EventKind::kLlStart;
        std::uint32_t retries = 0;
        std::size_t close = stream.size();
        for (std::size_t j = i + 1; j < stream.size(); ++j) {
          const auto kj = static_cast<EventKind>(stream[j].kind);
          if (stream[j].var != e.var) continue;
          if (is_ll && kj == EventKind::kLlRetry) ++retries;
          if ((is_ll && (kj == EventKind::kLlFast ||
                         kj == EventKind::kLlRescue)) ||
              (!is_ll && (kj == EventKind::kScCommit ||
                          kj == EventKind::kScFail))) {
            close = j;
            break;
          }
          if ((is_ll && kj == EventKind::kLlStart) ||
              (!is_ll && kj == EventKind::kScAttempt)) {
            break;  // window never closed (shouldn't happen)
          }
        }
        if (close < stream.size()) {
          const TraceEvent& c = stream[close];
          const auto ck = static_cast<EventKind>(c.kind);
          const double ts = detail::us_of(d, e.tsc);
          const double dur = detail::us_of(d, c.tsc) - ts;
          sep();
          std::fprintf(
              f,
              "{\"ph\":\"X\",\"name\":\"%s(%s)\",\"cat\":\"mwllsc\","
              "\"pid\":0,\"tid\":%zu,\"ts\":%.3f,\"dur\":%.3f,"
              "\"args\":{\"k\":\"%s\",\"end\":\"%s\",\"retries\":%u,"
              "\"var\":%u,\"tag\":%" PRIu64 ",\"arg\":%u}}",
              is_ll ? "LL" : "SC",
              ck == EventKind::kLlFast     ? "fast"
              : ck == EventKind::kLlRescue ? "helped"
              : ck == EventKind::kScCommit ? "commit"
                                           : "fail",
              pid, ts, dur < 0 ? 0.0 : dur, is_ll ? "ll" : "sc",
              event_name(ck), retries, e.var, c.tag, c.arg);
          continue;  // the close marker is skipped below
        }
        // Unclosed window (end of ring): fall through as an instant.
      }
      if ((k == EventKind::kLlFast || k == EventKind::kLlRescue ||
           k == EventKind::kScCommit || k == EventKind::kScFail)) {
        // Close markers are folded into their X event; one that reaches
        // here is an orphan from an evicted prefix — keep it as an
        // instant so the loader round-trips it.
        bool orphan = true;
        for (std::size_t j = i; j-- > 0;) {
          const auto kj = static_cast<EventKind>(stream[j].kind);
          if (stream[j].var != e.var) continue;
          if (kj == EventKind::kLlStart || kj == EventKind::kScAttempt) {
            // A window opener earlier in the stream claimed this close iff
            // no other close sits between them; the X scan above is
            // exactly that, so mirror it cheaply: the opener scan stopped
            // at the *first* close. Being the first close after an opener
            // of the right kind means not orphan.
            const bool opener_is_ll = kj == EventKind::kLlStart;
            const bool close_is_ll = k == EventKind::kLlFast ||
                                     k == EventKind::kLlRescue;
            if (opener_is_ll == close_is_ll) orphan = false;
            break;
          }
          if (kj == EventKind::kLlFast || kj == EventKind::kLlRescue ||
              kj == EventKind::kScCommit || kj == EventKind::kScFail) {
            break;  // another close intervenes: we're orphaned
          }
        }
        if (!orphan) continue;
      }

      // Instant event.
      sep();
      std::fprintf(f,
                   "{\"ph\":\"i\",\"name\":\"%s\",\"cat\":\"mwllsc\","
                   "\"s\":\"t\",\"pid\":0,\"tid\":%zu,\"ts\":%.3f,"
                   "\"args\":{\"k\":\"%s\",\"var\":%u,\"tag\":%" PRIu64
                   ",\"arg\":%u}}",
                   event_name(k), pid, detail::us_of(d, e.tsc),
                   event_name(k), e.var, e.tag, e.arg);

      // A donation grows a flow arrow to the helpee's track.
      if (k == EventKind::kHelpInstall) {
        const std::uint64_t id = detail::flow_id(e.var, e.arg, e.tag);
        auto it = consume_tsc.find(id);
        if (it != consume_tsc.end()) {
          sep();
          std::fprintf(f,
                       "{\"ph\":\"s\",\"name\":\"donation\",\"cat\":\"help\","
                       "\"id\":%" PRIu64
                       ",\"pid\":0,\"tid\":%zu,\"ts\":%.3f}",
                       id, pid, detail::us_of(d, e.tsc));
          sep();
          std::fprintf(f,
                       "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"donation\","
                       "\"cat\":\"help\",\"id\":%" PRIu64
                       ",\"pid\":0,\"tid\":%u,\"ts\":%.3f}",
                       id, e.arg, detail::us_of(d, it->second));
        }
      }
    }
  }

  std::fprintf(f, "\n],\n\"displayTimeUnit\": \"ms\",\n\"mwllsc\": {\n");
  std::fprintf(f, "  \"schema_version\": %u,\n", kTraceSchemaVersion);
  std::fprintf(f, "  \"sample_shift\": %u,\n", d.sample_shift);
  std::fprintf(f, "  \"dropped\": [");
  for (std::size_t p = 0; p < d.dropped.size(); ++p) {
    std::fprintf(f, "%s%" PRIu64, p ? ", " : "", d.dropped[p]);
  }
  std::fprintf(f, "],\n  \"vars\": [\n");
  for (std::size_t i = 0; i < d.vars.size(); ++i) {
    std::fprintf(f,
                 "    {\"id\": %u, \"words\": %u, \"label\": \"%s\"}%s\n",
                 d.vars[i].id, d.vars[i].words, d.vars[i].label.c_str(),
                 i + 1 < d.vars.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n}\n");
  std::fclose(f);
  return true;
}

// ------------------------------------------------------- chrome-trace load

namespace detail {

inline bool find_u64(const std::string& s, const char* key,
                     std::uint64_t* out) {
  const auto pos = s.find(key);
  if (pos == std::string::npos) return false;
  *out = std::strtoull(s.c_str() + pos + std::strlen(key), nullptr, 10);
  return true;
}

inline bool find_str(const std::string& s, const char* key,
                     std::string* out) {
  const auto pos = s.find(key);
  if (pos == std::string::npos) return false;
  const auto start = pos + std::strlen(key);
  const auto end = s.find('"', start);
  if (end == std::string::npos) return false;
  *out = s.substr(start, end - start);
  return true;
}

}  // namespace detail

/// Parses write_chrome_trace output (one traceEvents entry per line) back
/// into a TraceData; "X" windows are expanded to their start/retry/close
/// markers in place, so check_trace sees the same per-pid streams it would
/// on live rings. Timestamps come back in nanoseconds (ns_per_tick = 1).
inline bool load_chrome_trace(const std::string& path, TraceData* out,
                              std::string* err = nullptr) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  *out = TraceData{};
  out->ns_per_tick = 1.0;

  auto kind_of = [](const std::string& name) -> int {
    for (std::size_t k = 0; k < static_cast<std::size_t>(EventKind::kCount);
         ++k) {
      if (name == event_name(static_cast<EventKind>(k))) {
        return static_cast<int>(k);
      }
    }
    return -1;
  };

  char buf[2048];
  bool in_vars = false;
  while (std::fgets(buf, sizeof(buf), f)) {
    std::string line(buf);

    if (line.find("\"vars\"") != std::string::npos) in_vars = true;
    if (in_vars && line.find("\"id\"") != std::string::npos) {
      TraceData::VarInfo v;
      std::uint64_t u = 0;
      if (detail::find_u64(line, "\"id\": ", &u)) {
        v.id = static_cast<std::uint32_t>(u);
      }
      if (detail::find_u64(line, "\"words\": ", &u)) {
        v.words = static_cast<std::uint32_t>(u);
      }
      detail::find_str(line, "\"label\": \"", &v.label);
      out->vars.push_back(std::move(v));
      continue;
    }
    std::uint64_t u = 0;
    if (detail::find_u64(line, "\"sample_shift\": ", &u)) {
      out->sample_shift = static_cast<std::uint32_t>(u);
      continue;
    }
    if (line.find("\"dropped\": [") != std::string::npos) {
      const char* p = std::strchr(line.c_str(), '[') + 1;
      while (*p && *p != ']') {
        char* next = nullptr;
        out->dropped.push_back(std::strtoull(p, &next, 10));
        if (next == p) break;
        p = next;
        while (*p == ',' || *p == ' ') ++p;
      }
      continue;
    }

    std::string ph;
    if (!detail::find_str(line, "\"ph\":\"", &ph)) continue;
    if (ph != "X" && ph != "i") continue;  // flows/metadata carry no state

    std::uint64_t tid = 0, var = 0, tag = 0, arg = 0;
    detail::find_u64(line, "\"tid\":", &tid);
    detail::find_u64(line, "\"var\":", &var);
    detail::find_u64(line, "\"tag\":", &tag);
    detail::find_u64(line, "\"arg\":", &arg);
    const auto ts_pos = line.find("\"ts\":");
    const double ts_us =
        ts_pos == std::string::npos
            ? 0.0
            : std::strtod(line.c_str() + ts_pos + 5, nullptr);

    if (out->per_pid.size() <= tid) out->per_pid.resize(tid + 1);
    auto& stream = out->per_pid[tid];
    auto push = [&](EventKind k, double at_us) {
      TraceEvent e;
      e.tsc = static_cast<std::uint64_t>(at_us * 1000.0);
      e.tag = tag;
      e.var = static_cast<std::uint32_t>(var);
      e.arg = static_cast<std::uint32_t>(arg);
      e.kind = static_cast<std::uint16_t>(k);
      e.pid = static_cast<std::uint16_t>(tid);
      stream.push_back(e);
    };

    if (ph == "X") {
      std::string end;
      std::uint64_t retries = 0;
      detail::find_str(line, "\"end\":\"", &end);
      detail::find_u64(line, "\"retries\":", &retries);
      const int close = kind_of(end);
      if (close < 0) continue;
      const bool is_ll = end == "ll_fast" || end == "ll_rescue";
      const auto dur_pos = line.find("\"dur\":");
      const double dur_us =
          dur_pos == std::string::npos
              ? 0.0
              : std::strtod(line.c_str() + dur_pos + 6, nullptr);
      push(is_ll ? EventKind::kLlStart : EventKind::kScAttempt, ts_us);
      for (std::uint64_t i = 0; i < retries; ++i) {
        push(EventKind::kLlRetry, ts_us);
      }
      push(static_cast<EventKind>(close), ts_us + dur_us);
    } else {
      std::string name;
      detail::find_str(line, "\"name\":\"", &name);
      const int k = kind_of(name);
      if (k >= 0) push(static_cast<EventKind>(k), ts_us);
    }
  }
  std::fclose(f);
  if (out->dropped.size() < out->per_pid.size()) {
    out->dropped.resize(out->per_pid.size(), 0);
  }
  return true;
}

// --------------------------------------------------------- metrics export

/// Prometheus text exposition format: one TYPE line per base name, then
/// each series; histograms become summaries (p50/p99 quantiles + _count
/// and _max series).
inline bool write_prometheus(const std::string& path,
                             const MetricsRegistry& reg,
                             std::string* err = nullptr) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::string last_base;
  for (const auto& [key, m] : reg.metrics()) {
    const auto [base, labels] = MetricsRegistry::split_key(key);
    if (base != last_base) {
      std::fprintf(f, "# TYPE %s %s\n", base.c_str(),
                   m.type == MetricsRegistry::Type::kCounter ? "counter"
                   : m.type == MetricsRegistry::Type::kGauge ? "gauge"
                                                             : "summary");
      last_base = base;
    }
    auto series = [&](const std::string& name, const std::string& extra,
                      double v) {
      std::string lbl = labels;
      if (!extra.empty()) lbl += (lbl.empty() ? "" : ",") + extra;
      if (lbl.empty()) {
        std::fprintf(f, "%s %.17g\n", name.c_str(), v);
      } else {
        std::fprintf(f, "%s{%s} %.17g\n", name.c_str(), lbl.c_str(), v);
      }
    };
    if (m.type == MetricsRegistry::Type::kHistogram) {
      series(base, "quantile=\"0.5\"",
             static_cast<double>(m.hist.percentile(0.5)));
      series(base, "quantile=\"0.99\"",
             static_cast<double>(m.hist.percentile(0.99)));
      series(base + "_count", "", static_cast<double>(m.hist.count()));
      series(base + "_max", "", static_cast<double>(m.hist.max()));
    } else {
      series(base, "", m.value);
    }
  }
  std::fclose(f);
  return true;
}

inline bool write_metrics_json(const std::string& path,
                               const MetricsRegistry& reg,
                               std::string* err = nullptr) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::fprintf(f, "{\n  \"schema_version\": %u,\n  \"metrics\": [\n",
               kTraceSchemaVersion);
  std::size_t i = 0;
  const auto& all = reg.metrics();
  for (const auto& [key, m] : all) {
    std::fprintf(f, "    {\"name\": \"%s\", \"type\": \"%s\", ",
                 key.c_str(),
                 m.type == MetricsRegistry::Type::kCounter ? "counter"
                 : m.type == MetricsRegistry::Type::kGauge ? "gauge"
                                                           : "histogram");
    if (m.type == MetricsRegistry::Type::kHistogram) {
      std::fprintf(f,
                   "\"p50\": %" PRIu64 ", \"p99\": %" PRIu64
                   ", \"max\": %" PRIu64 ", \"count\": %" PRIu64 "}",
                   m.hist.percentile(0.5), m.hist.percentile(0.99),
                   m.hist.max(), m.hist.count());
    } else {
      std::fprintf(f, "\"value\": %.17g}", m.value);
    }
    std::fprintf(f, "%s\n", ++i < all.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace mwllsc::obs
