// Named-metric registry (DESIGN.md §8): counters, gauges and latency
// histograms behind a stable string-keyed API, Prometheus-flavoured —
// a key is `base_name{label="value",...}`, and exporters group series by
// base name. The registry is the cold side of the obs/ layer: it absorbs
// OpStatsArray snapshots and LatencyHistograms after a run and adds the
// derived online metrics (SC success ratio, helps/op, time-in-help,
// per-variable contention estimate) the benches and the ROADMAP's
// contention-aware-helping work need to observe.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "util/stats.hpp"

namespace mwllsc::obs {

class MetricsRegistry {
 public:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Metric {
    Type type = Type::kGauge;
    double value = 0;              // counter / gauge
    util::LatencyHistogram hist;   // histogram only
  };

  /// `labeled("mwllsc_sc_ops_total", "impl=\"jp\",w=\"4\"")` ->
  /// `mwllsc_sc_ops_total{impl="jp",w="4"}`. Empty labels -> bare name.
  static std::string labeled(const std::string& base,
                             const std::string& labels) {
    return labels.empty() ? base : base + "{" + labels + "}";
  }

  void set_counter(const std::string& key, std::uint64_t v) {
    Metric& m = metrics_[key];
    m.type = Type::kCounter;
    m.value = static_cast<double>(v);
  }

  void add_counter(const std::string& key, std::uint64_t v) {
    Metric& m = metrics_[key];
    m.type = Type::kCounter;
    m.value += static_cast<double>(v);
  }

  void set_gauge(const std::string& key, double v) {
    Metric& m = metrics_[key];
    m.type = Type::kGauge;
    m.value = v;
  }

  void record_histogram(const std::string& key,
                        const util::LatencyHistogram& h) {
    Metric& m = metrics_[key];
    m.type = Type::kHistogram;
    m.hist.merge(h);
  }

  /// Absorbs one implementation's counter snapshot under a label set and
  /// derives the online health metrics from it.
  void absorb(const std::string& labels, const core::OpStatsSnapshot& s) {
    set_counter(labeled("mwllsc_ll_ops_total", labels), s.ll_ops);
    set_counter(labeled("mwllsc_sc_ops_total", labels), s.sc_ops);
    set_counter(labeled("mwllsc_sc_success_total", labels), s.sc_success);
    set_counter(labeled("mwllsc_vl_ops_total", labels), s.vl_ops);
    set_counter(labeled("mwllsc_ll_helped_total", labels), s.ll_helped);
    set_counter(labeled("mwllsc_ll_rescue_total", labels),
                s.ll_used_helped_value);
    set_counter(labeled("mwllsc_helps_given_total", labels), s.helps_given);
    set_counter(labeled("mwllsc_bank_writes_total", labels), s.bank_writes);
    set_counter(labeled("mwllsc_ll_retries_total", labels), s.ll_retries);

    const double sc = static_cast<double>(s.sc_ops);
    const double ll = static_cast<double>(s.ll_ops);
    const double success_ratio =
        sc > 0 ? static_cast<double>(s.sc_success) / sc : 0.0;
    set_gauge(labeled("mwllsc_sc_success_ratio", labels), success_ratio);
    // Contention estimate: fraction of SC attempts killed by a concurrent
    // winner — 0 uncontended, -> (N-1)/N saturated. This is the signal the
    // contention-aware-helping direction will throttle on.
    set_gauge(labeled("mwllsc_contention_estimate", labels),
              sc > 0 ? 1.0 - success_ratio : 0.0);
    set_gauge(labeled("mwllsc_helps_per_op", labels),
              ll > 0 ? static_cast<double>(s.helps_given) / ll : 0.0);
    set_gauge(labeled("mwllsc_help_rate", labels),
              ll > 0 ? static_cast<double>(s.ll_helped) / ll : 0.0);
    set_gauge(labeled("mwllsc_rescue_rate", labels),
              ll > 0 ? static_cast<double>(s.ll_used_helped_value) / ll
                     : 0.0);
  }

  /// Absorbs an operation-latency histogram under a label set.
  void absorb_latency(const std::string& labels,
                      const util::LatencyHistogram& h) {
    record_histogram(labeled("mwllsc_op_latency_ns", labels), h);
  }

  /// Derives trace-only metrics a counter snapshot cannot provide:
  /// per-kind event totals, LL wall time, and time-in-help (the summed
  /// duration of LLs that completed through a donated buffer).
  void absorb_trace(const TraceData& d) {
    std::uint64_t kind_counts[static_cast<std::size_t>(EventKind::kCount)] =
        {};
    struct PerVar {
      std::uint64_t lls = 0;
      double ll_ns = 0;
      std::uint64_t helped_lls = 0;
      double help_ns = 0;
    };
    std::map<std::uint32_t, PerVar> per_var;

    for (const auto& stream : d.per_pid) {
      // Open LL window per var for this pid (windows never nest per pid:
      // an LL is a single call and emits nothing else while open).
      std::map<std::uint32_t, std::uint64_t> open_ll;
      for (const TraceEvent& e : stream) {
        if (e.kind < static_cast<std::uint16_t>(EventKind::kCount)) {
          ++kind_counts[e.kind];
        }
        const auto k = static_cast<EventKind>(e.kind);
        if (k == EventKind::kLlStart) {
          open_ll[e.var] = e.tsc;
        } else if (k == EventKind::kLlFast || k == EventKind::kLlRescue) {
          auto it = open_ll.find(e.var);
          if (it == open_ll.end()) continue;  // truncated prefix
          const double ns =
              static_cast<double>(e.tsc - it->second) * d.ns_per_tick;
          PerVar& v = per_var[e.var];
          ++v.lls;
          v.ll_ns += ns;
          if (k == EventKind::kLlRescue) {
            ++v.helped_lls;
            v.help_ns += ns;
          }
          open_ll.erase(it);
        }
      }
    }

    for (std::size_t k = 0; k < static_cast<std::size_t>(EventKind::kCount);
         ++k) {
      if (kind_counts[k] == 0) continue;
      set_counter(labeled("mwllsc_trace_events_total",
                          std::string("kind=\"") +
                              event_name(static_cast<EventKind>(k)) + "\""),
                  kind_counts[k]);
    }
    for (const auto& [id, v] : per_var) {
      const TraceData::VarInfo* info = d.var_info(id);
      const std::string labels =
          "var=\"" + std::to_string(id) + "\",label=\"" +
          (info ? info->label : std::string("?")) + "\"";
      set_counter(labeled("mwllsc_traced_lls_total", labels), v.lls);
      set_gauge(labeled("mwllsc_ll_mean_ns", labels),
                v.lls ? v.ll_ns / static_cast<double>(v.lls) : 0.0);
      set_counter(labeled("mwllsc_time_in_help_ns_total", labels),
                  static_cast<std::uint64_t>(v.help_ns));
      set_gauge(labeled("mwllsc_traced_help_rate", labels),
                v.lls ? static_cast<double>(v.helped_lls) /
                            static_cast<double>(v.lls)
                      : 0.0);
    }
  }

  const std::map<std::string, Metric>& metrics() const { return metrics_; }
  bool empty() const { return metrics_.empty(); }

  /// Splits a series key into (base name, label block without braces).
  static std::pair<std::string, std::string> split_key(
      const std::string& key) {
    const auto brace = key.find('{');
    if (brace == std::string::npos) return {key, ""};
    std::string labels = key.substr(brace + 1);
    if (!labels.empty() && labels.back() == '}') labels.pop_back();
    return {key.substr(0, brace), labels};
  }

 private:
  std::map<std::string, Metric> metrics_;
};

}  // namespace mwllsc::obs
