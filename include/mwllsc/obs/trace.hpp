// Wait-free protocol-event tracing (DESIGN.md §8). Each process id owns a
// cache-line-padded, fixed-capacity ring of typed POD events; the hot-path
// write is two relaxed stores into memory only that process touches, so
// tracing never adds synchronization (or an unbounded allocation) to the
// wait-free protocol it observes. When the ring wraps, the newest events
// win — a trace is always a contiguous *suffix* of each process's history,
// and the per-ring dropped count tells consumers how much prefix is gone.
//
// The whole layer is compiled out unless MWLLSC_TRACE is defined: the
// TraceHandle the instrumented classes embed becomes an empty struct and
// every emit() call folds to nothing (tests static_assert the emptiness).
// When compiled in, TraceConfig adds a run-time sampling knob (record every
// 2^sample_shift-th event per ring) for runs too hot to trace exhaustively.
//
// Timestamps are raw TSC ticks on x86-64 (one rdtsc, no serialization —
// cheap and monotone enough for per-pid ordering; the rings themselves are
// the authoritative per-pid order). The sink samples (tsc, steady_clock)
// at construction and again at collect(), and exports the fitted
// ns-per-tick so consumers can convert.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace mwllsc::obs {

/// Protocol event taxonomy. The core/baseline events follow the paper's
/// LL/SC pseudocode (see OpStatsSnapshot's doc comment for the line
/// mapping); announce/help_all/apply_commit are the apps-layer help-all
/// universal construction.
enum class EventKind : std::uint16_t {
  kLlStart = 0,     ///< LL announced / entered          (tag = announce seq)
  kLlFast,          ///< LL fast path returned           (tag = linked tag)
  kLlHelped,        ///< donation raced a fast-path LL   (tag = announce seq)
  kLlRescue,        ///< LL returned the donated value   (tag = announce seq)
  kLlRetry,         ///< LL validation failed, looping   (defensive for jp)
  kScAttempt,       ///< SC entered                      (arg = link_valid)
  kScCommit,        ///< SC installed                    (tag = new version)
  kScFail,          ///< SC failed (semantic)
  kHelpInstall,     ///< SC donated a buffer pre-SC      (arg = helpee pid)
  kBankWrite,       ///< the one-per-SC retirement write (invariant I2)
  kBufferRetire,    ///< buffer pushed through the ring  (arg = buffer id)
  kAnnounce,        ///< apps: op published              (tag = op seq)
  kHelpAll,         ///< apps: help-all pass ran         (arg = ops applied)
  kApplyCommit,     ///< apps: apply finished            (arg = attempts)
  kProcJoin,        ///< membership: pid slot acquired   (arg = 1 if degraded)
  kProcRetire,      ///< membership: pid slot released   (tag = slot generation)
  kProcCrashReclaim,///< membership: dead pid reclaimed  (tag = announce seq)
  kCount,
};

inline const char* event_name(EventKind k) {
  static const char* names[] = {
      "ll_start",  "ll_fast",   "ll_helped",    "ll_rescue",     "ll_retry",
      "sc_attempt", "sc_commit", "sc_fail",     "help_install",  "bank_write",
      "buffer_retire", "announce", "help_all",  "apply_commit",
      "proc_join", "proc_retire", "proc_crash_reclaim"};
  const auto i = static_cast<std::size_t>(k);
  return i < static_cast<std::size_t>(EventKind::kCount) ? names[i] : "?";
}

/// One recorded protocol event. Fixed-size POD written with relaxed stores;
/// `tag` and `arg` carry per-kind payloads (see EventKind comments).
struct TraceEvent {
  std::uint64_t tsc = 0;   ///< raw timestamp (TSC ticks; ns off x86)
  std::uint64_t tag = 0;   ///< seq / version tag, per kind
  std::uint32_t var = 0;   ///< traced-variable id (TraceSink::describe_var)
  std::uint32_t arg = 0;   ///< per-kind extra (buffer id, helpee pid, ...)
  std::uint16_t kind = 0;  ///< EventKind
  std::uint16_t pid = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(TraceEvent) == 32, "events are fixed-size records");
static_assert(std::is_trivially_copyable_v<TraceEvent>, "POD events only");

inline std::uint64_t trace_now() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

struct TraceConfig {
  std::uint32_t capacity = 1u << 14;  ///< events per process (rounded pow2)
  std::uint32_t sample_shift = 0;     ///< record every 2^shift-th event
};

/// Per-process event ring. Single-writer: only the owning process records;
/// readers call snapshot() strictly after the recording threads quiesce
/// (joined or barriered), which the join's happens-before makes race-free.
/// head_ is a relaxed atomic so a concurrent *peek* (e.g. a progress
/// printer reading counts) is merely stale, never UB.
class alignas(64) TraceRing {
 public:
  void init(std::uint32_t capacity, std::uint32_t sample_shift) {
    cap_ = 1;
    while (cap_ < capacity) cap_ <<= 1;
    mask_ = cap_ - 1;
    sample_mask_ = (std::uint64_t{1} << sample_shift) - 1;
    slots_.reset(new TraceEvent[cap_]);
  }

  void record(EventKind k, std::uint16_t pid, std::uint32_t var,
              std::uint64_t tag, std::uint32_t arg) {
    if ((seen_++ & sample_mask_) != 0) return;  // sampling knob
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    TraceEvent& e = slots_[h & mask_];
    e.tsc = trace_now();
    e.tag = tag;
    e.var = var;
    e.arg = arg;
    e.kind = static_cast<std::uint16_t>(k);
    e.pid = pid;
    head_.store(h + 1, std::memory_order_relaxed);
  }

  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    const std::uint64_t h = recorded();
    return h > cap_ ? h - cap_ : 0;
  }

  /// Events still resident, oldest first (a contiguous suffix of history).
  std::vector<TraceEvent> snapshot() const {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t n = h < cap_ ? h : cap_;
    std::vector<TraceEvent> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = h - n; i < h; ++i) {
      out.push_back(slots_[i & mask_]);
    }
    return out;
  }

 private:
  std::unique_ptr<TraceEvent[]> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::uint64_t seen_ = 0;  // single-writer sampling counter
  std::uint64_t cap_ = 0;
  std::uint64_t mask_ = 0;
  std::uint64_t sample_mask_ = 0;
};

/// Everything a trace consumer (exporter, checker, metrics) needs, pulled
/// out of the live rings in one quiescent pass.
struct TraceData {
  struct VarInfo {
    std::uint32_t id = 0;
    std::uint32_t words = 0;
    std::string label;  ///< substrate kind ("jp", "am", ...) or bench label
  };

  std::vector<VarInfo> vars;
  std::vector<std::vector<TraceEvent>> per_pid;  ///< per-pid, ring order
  std::vector<std::uint64_t> dropped;            ///< per-pid evicted counts
  std::uint32_t sample_shift = 0;
  std::uint64_t tsc0 = 0;       ///< sink-construction timestamp (ticks)
  double ns_per_tick = 1.0;

  const VarInfo* var_info(std::uint32_t id) const {
    for (const auto& v : vars) {
      if (v.id == id) return &v;
    }
    return nullptr;
  }

  std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const auto& v : per_pid) n += v.size();
    return n;
  }

  double ns_of(std::uint64_t tsc) const {
    return static_cast<double>(tsc - tsc0) * ns_per_tick;
  }
};

/// Owns one ring per process plus the traced-variable metadata. Multiple
/// variables (and the apps layer above them) share one sink: their events
/// interleave in each process's ring in program order, which is exactly the
/// per-pid history the checker replays.
class TraceSink {
 public:
  explicit TraceSink(std::uint32_t nprocs, TraceConfig cfg = {})
      : n_(nprocs), cfg_(cfg), rings_(new TraceRing[nprocs]) {
    for (std::uint32_t p = 0; p < nprocs; ++p) {
      rings_[p].init(cfg.capacity, cfg.sample_shift);
    }
    tsc0_ = trace_now();
    ns0_ = wall_ns();
  }

  /// Hot path: called from the instrumented protocol under the owning
  /// process's id. Out-of-range pids (a bench binding more vars than the
  /// sink has rings never produces one, but be safe) are dropped.
  void record(EventKind k, std::uint32_t pid, std::uint32_t var,
              std::uint64_t tag, std::uint32_t arg) {
    if (pid >= n_) return;
    rings_[pid].record(k, static_cast<std::uint16_t>(pid), var, tag, arg);
  }

  /// Registers / overwrites a traced variable's metadata (cold path; a
  /// mutex is fine). Implementations self-describe in set_trace with their
  /// substrate kind; a bench may re-describe with a richer label afterwards
  /// — last writer wins, and the checker keys its per-substrate rules on a
  /// label *prefix*, so "jp w=4 t=8" still claims the jp bound.
  void describe_var(std::uint32_t id, std::uint32_t words,
                    std::string label) {
    std::lock_guard<std::mutex> g(mu_);
    for (auto& v : vars_) {
      if (v.id == id) {
        v.words = words;
        v.label = std::move(label);
        return;
      }
    }
    vars_.push_back({id, words, std::move(label)});
  }

  std::uint32_t procs() const { return n_; }
  const TraceConfig& config() const { return cfg_; }

  /// Quiescent collection: call only after the traced threads joined (the
  /// join provides the happens-before for the plain event slots).
  TraceData collect() const {
    TraceData d;
    {
      std::lock_guard<std::mutex> g(mu_);
      d.vars = vars_;
    }
    d.per_pid.resize(n_);
    d.dropped.resize(n_);
    for (std::uint32_t p = 0; p < n_; ++p) {
      d.per_pid[p] = rings_[p].snapshot();
      d.dropped[p] = rings_[p].dropped();
    }
    d.sample_shift = cfg_.sample_shift;
    d.tsc0 = tsc0_;
    const std::uint64_t tsc1 = trace_now();
    const std::uint64_t ns1 = wall_ns();
    d.ns_per_tick = tsc1 > tsc0_ ? static_cast<double>(ns1 - ns0_) /
                                       static_cast<double>(tsc1 - tsc0_)
                                 : 1.0;
    return d;
  }

 private:
  static std::uint64_t wall_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  const std::uint32_t n_;
  const TraceConfig cfg_;
  std::unique_ptr<TraceRing[]> rings_;
  mutable std::mutex mu_;
  std::vector<TraceData::VarInfo> vars_;
  std::uint64_t tsc0_ = 0;
  std::uint64_t ns0_ = 0;
};

#if defined(MWLLSC_TRACE)

/// The handle an instrumented class embeds. Compiled in: a (sink, var id)
/// pair; emit is one predictable null check plus the ring write.
class TraceHandle {
 public:
  void bind(TraceSink* sink, std::uint32_t var) {
    sink_ = sink;
    var_ = var;
  }
  bool bound() const { return sink_ != nullptr; }

  void emit(EventKind k, std::uint32_t pid, std::uint64_t tag = 0,
            std::uint32_t arg = 0) const {
    if (sink_) sink_->record(k, pid, var_, tag, arg);
  }

 private:
  TraceSink* sink_ = nullptr;
  std::uint32_t var_ = 0;
};

#else  // !MWLLSC_TRACE

/// Compiled out: an empty struct whose emit folds to nothing. The tests
/// static_assert the emptiness — the hot path carries zero trace overhead.
class TraceHandle {
 public:
  void bind(TraceSink*, std::uint32_t) {}
  bool bound() const { return false; }
  void emit(EventKind, std::uint32_t, std::uint64_t = 0,
            std::uint32_t = 0) const {}
};
static_assert(std::is_empty_v<TraceHandle>,
              "trace-off builds must carry no per-object trace state");

#endif  // MWLLSC_TRACE

}  // namespace mwllsc::obs
