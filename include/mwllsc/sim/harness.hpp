// Deterministic simulation harness for the multiword LL/SC protocols.
//
// The per-implementation step machines (sim_jp.hpp, sim_am.hpp,
// sim_retry.hpp) re-express each protocol as an explicit state machine: one
// call to step(pid) performs one memory access of process pid's in-flight
// operation. Because the scheduler — not the OS — decides which process
// moves next, the harness can replay any interleaving exactly, which turns
// Theorem 1's wait-freedom claim from a statistical observation into a
// checkable property:
//
//   * run_random            seeded uniform scheduling, the baseline sweep;
//   * run_adversarial_anti  an anti-schedule that tries to starve one
//                           victim reader: run the victim up to its copy
//                           validation, inject a successful SC, let the
//                           doomed validation fail, repeat. Wait-free
//                           implementations stay bounded (the announce/help
//                           path rescues the victim); the retry strawman's
//                           victim LL grows with however long the
//                           adversary cares to run;
//   * enumerate_preemption_bounded
//                           CHESS-style bounded search (Musuvathi & Qadeer):
//                           exhaustively explore every schedule with at
//                           most K preemptions — and, with a crash budget,
//                           every crash-stop placement — checking
//                           invariants and the sequential-spec oracle after
//                           every step;
//   * run_crash_churn       seeded-random scheduling with periodic
//                           crash(pid) injection and delayed reclamation —
//                           the membership layer's churn, in the simulator;
//   * run_replay            re-executes a recorded schedule token-for-token
//                           (every invariant-violation message embeds its
//                           scheduler seed and exact schedule prefix, so
//                           failures reproduce with --seed/--replay).
//
// Systems and checkers are plain copyable values, which is what makes the
// exhaustive search a simple DFS with state copies at branch points.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace mwllsc::sim {

namespace detail {

/// Whether a step machine models the crash-stop adversary (crash/reclaim).
/// Runners that inject crashes compile their crash arms out for systems
/// that don't (the am/retry baselines), instead of failing to instantiate.
template <class S, class = void>
struct SupportsCrash : std::false_type {};
template <class S>
struct SupportsCrash<
    S, std::void_t<decltype(std::declval<S&>().crash(std::uint32_t{0})),
                   decltype(std::declval<S&>().reclaim(std::uint32_t{0}))>>
    : std::true_type {};

}  // namespace detail

enum class OpType { kLl, kSc, kVl };

/// Completion record for one operation, carrying the ghost state the
/// oracle needs. "version" is the abstract state version: the number of
/// successful SCs applied to the variable so far (version v's value is the
/// v-th entry of the checker's history).
struct OpRecord {
  OpType type = OpType::kLl;
  std::uint32_t pid = 0;
  std::uint32_t steps = 0;      ///< simulator steps this op took
  bool success = false;         ///< SC/VL outcome; LL always true
  bool helped = false;          ///< LL: a donation was involved
  bool had_link = false;        ///< SC/VL: link_valid on entry
  std::vector<std::uint64_t> value;  ///< LL: value read; SC: value written
  std::uint64_t start_version = 0;   ///< version when the op began
  std::uint64_t end_version = 0;     ///< version when the op completed
  std::uint64_t lin_version = 0;     ///< LL: version whose value was returned
  std::uint64_t link_version = 0;    ///< SC/VL: version the matching LL linked at
  std::uint64_t version_at_sc = 0;   ///< SC: version right before the X step
};

struct StepResult {
  bool completed = false;
  OpRecord rec;  ///< valid iff completed
};

struct RunResult {
  bool ok = true;
  std::string error;
  std::uint64_t total_steps = 0;
  std::uint32_t max_ll_steps = 0;  ///< worst completed LL, in steps
};

struct EnumerateResult {
  bool ok = true;
  std::string error;
  std::uint64_t schedules_explored = 0;  ///< complete executions reached
  std::uint64_t total_steps = 0;         ///< step() calls across the search
  std::uint32_t max_ll_steps = 0;  ///< worst completed LL across schedules
  bool truncated = false;                ///< hit the schedule budget
};

struct WorkloadConfig {
  std::uint32_t ops_per_proc = 100;  ///< LL..SC rounds per process
  std::uint32_t vl_percent = 10;     ///< chance of a VL between LL and SC
  std::uint64_t seed = 1;            ///< workload stream seed (VL coin)
};

/// Owns a System and drives each process through a deterministic script of
/// ops_per_proc rounds of LL, optional VL, then SC of a value derived from
/// (pid, round) — so the oracle can match every observed value to the
/// unique write that produced it. The scheduler (a runner below) only
/// chooses *which* process takes the next step.
template <class System>
class SimWorkload {
 public:
  SimWorkload(System sys, WorkloadConfig cfg)
      : sys_(std::move(sys)), cfg_(cfg), crashed_(sys_.n(), 0) {
    procs_.reserve(sys_.n());
    for (std::uint32_t p = 0; p < sys_.n(); ++p) {
      procs_.push_back(Proc{util::SplitMix64(cfg_.seed * 0x9e3779b9u + p)});
    }
  }

  System& system() { return sys_; }
  const System& system() const { return sys_; }

  /// A crashed process takes no steps until reclaimed, so it counts as
  /// done for scheduling purposes (done() means "no runnable work", not
  /// "every script finished" — a crash-stop may strand a script forever).
  bool proc_done(std::uint32_t p) const {
    return crashed_[p] != 0 ||
           (procs_[p].rounds >= cfg_.ops_per_proc && sys_.idle(p));
  }

  bool done() const {
    for (std::uint32_t p = 0; p < sys_.n(); ++p) {
      if (!proc_done(p)) return false;
    }
    return true;
  }

  bool crashed(std::uint32_t p) const { return crashed_[p] != 0; }

  /// Whether p's script is finished regardless of crash state (used by
  /// churn runners to decide if a crashed process is worth reclaiming
  /// before declaring the run over).
  bool script_done(std::uint32_t p) const {
    return procs_[p].rounds >= cfg_.ops_per_proc && sys_.idle(p);
  }

  /// One simulator step of process p, feeding the checker after the step
  /// and after any op completion. p must not be done.
  template <class Checker>
  StepResult step(std::uint32_t p, Checker& chk) {
    assert(!proc_done(p));
    sched_.push_back(p << 2);
    if (sys_.idle(p)) begin_next(p);
    StepResult r = sys_.step(p);
    ++total_steps_;
    chk.on_step(sys_);
    if (r.completed) {
      advance_script(p, r.rec);
      chk.on_op(sys_, r.rec);
    }
    return r;
  }

  /// Crash-stop event: p freezes wherever it is and never steps again
  /// (until reclaimed). Re-runs the invariant checks at the crash point —
  /// a frozen process must leave every invariant intact by construction.
  template <class Checker>
  void crash(std::uint32_t p, Checker& chk) {
    static_assert(detail::SupportsCrash<System>::value,
                  "this step machine does not model crash-stop");
    assert(!crashed_[p]);
    sched_.push_back((p << 2) | 1);
    crashed_[p] = 1;
    sys_.crash(p);
    chk.on_step(sys_);
  }

  /// Reclaims a crashed process's slot (completing/withdrawing its help
  /// obligations, see System::reclaim) and makes the pid runnable again;
  /// its interrupted micro-op restarts from scratch. Re-runs the invariant
  /// checks — reclamation must restore the exact buffer-ownership census.
  template <class Checker>
  void reclaim(std::uint32_t p, Checker& chk) {
    assert(crashed_[p]);
    sched_.push_back((p << 2) | 2);
    crashed_[p] = 0;
    sys_.reclaim(p);
    chk.on_step(sys_);
  }

  std::uint64_t total_steps() const { return total_steps_; }
  std::uint32_t max_ll_steps() const { return max_ll_steps_; }
  std::uint64_t completed_lls() const { return completed_lls_; }

  /// The exact schedule so far in `--replay` token form: "P" is one step
  /// of process P, "cP" a crash, "rP" a reclaim. Longer schedules are
  /// truncated with a "+K" tail — the scheduler seed in the same message
  /// reproduces them in full.
  std::string schedule_string(std::size_t max_chars = 4096) const {
    std::string out;
    for (std::size_t i = 0; i < sched_.size(); ++i) {
      std::string tok;
      switch (sched_[i] & 3) {
        case 1: tok = "c"; break;
        case 2: tok = "r"; break;
        default: break;
      }
      tok += std::to_string(sched_[i] >> 2);
      if (!out.empty()) out += ',';
      if (out.size() + tok.size() > max_chars) {
        out += "+" + std::to_string(sched_.size() - i) + " more";
        break;
      }
      out += tok;
    }
    return out;
  }

 private:
  // Micro-op script position within the current round.
  enum : std::uint8_t { kAtLl = 0, kAtVl = 1, kAtSc = 2 };

  struct Proc {
    util::SplitMix64 rng;
    std::uint32_t rounds = 0;
    std::uint8_t micro = kAtLl;
  };

  void begin_next(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.rounds < cfg_.ops_per_proc);
    switch (pr.micro) {
      case kAtLl:
        sys_.begin_ll(p);
        break;
      case kAtVl:
        sys_.begin_vl(p);
        break;
      case kAtSc:
        sys_.begin_sc(p, value_for(p, pr.rounds));
        break;
    }
  }

  void advance_script(std::uint32_t p, const OpRecord& rec) {
    Proc& pr = procs_[p];
    switch (rec.type) {
      case OpType::kLl:
        if (rec.steps > max_ll_steps_) max_ll_steps_ = rec.steps;
        ++completed_lls_;
        pr.micro = (pr.rng.next() % 100 < cfg_.vl_percent) ? kAtVl : kAtSc;
        break;
      case OpType::kVl:
        pr.micro = kAtSc;
        break;
      case OpType::kSc:
        pr.micro = kAtLl;
        ++pr.rounds;
        break;
    }
  }

  std::vector<std::uint64_t> value_for(std::uint32_t p,
                                       std::uint32_t round) const {
    std::vector<std::uint64_t> v(sys_.w());
    for (std::uint32_t i = 0; i < sys_.w(); ++i) {
      v[i] = (std::uint64_t{p} + 1) * 0x100000001b3ULL +
             std::uint64_t{round} * 131 + i * 7 + 1;
    }
    return v;
  }

  System sys_;
  WorkloadConfig cfg_;
  std::vector<std::uint8_t> crashed_;
  std::vector<Proc> procs_;
  std::vector<std::uint32_t> sched_;  ///< (pid << 2) | {step=0, crash=1, reclaim=2}
  std::uint64_t total_steps_ = 0;
  std::uint64_t completed_lls_ = 0;
  std::uint32_t max_ll_steps_ = 0;
};

namespace detail {

/// On a checker violation, embeds how the schedule was produced (the seed
/// or adversary) plus the exact schedule prefix in the error, so every
/// failure reproduces via --seed or --replay (bench_sim_schedules).
template <class System, class Checker>
bool bail(const Checker& chk, RunResult& res, const SimWorkload<System>& wl,
          const std::string& how) {
  if (chk.ok()) return false;
  res.ok = false;
  res.error = chk.error() + " [repro: " + how +
              " schedule=" + wl.schedule_string() + "]";
  return true;
}

}  // namespace detail

/// Seeded uniform scheduling: every step, a uniformly random not-yet-done
/// process moves.
template <class System, class Checker>
RunResult run_random(SimWorkload<System>& wl, Checker& chk,
                     std::uint64_t sched_seed) {
  util::Xoshiro256 rng(sched_seed ? sched_seed : 1);
  RunResult res;
  const std::string how = "sched-seed=" + std::to_string(sched_seed);
  std::vector<std::uint32_t> runnable;
  while (!wl.done()) {
    runnable.clear();
    for (std::uint32_t p = 0; p < wl.system().n(); ++p) {
      if (!wl.proc_done(p)) runnable.push_back(p);
    }
    const std::uint32_t p =
        runnable[rng.next_below(static_cast<std::uint32_t>(runnable.size()))];
    wl.step(p, chk);
    if (detail::bail(chk, res, wl, how)) break;
  }
  res.total_steps = wl.total_steps();
  res.max_ll_steps = wl.max_ll_steps();
  return res;
}

/// Churn scheduling for the crash-stop adversary: seeded-random stepping
/// with a crash injected every ~crash_period steps (never the last live
/// process) and each dead slot reclaimed reclaim_delay steps later, so
/// survivors keep running against frozen announces, orphaned donations and
/// in-flight retirements, then against the recycled slots.
struct ChurnConfig {
  std::uint64_t sched_seed = 1;
  std::uint32_t crash_period = 53;   ///< steps between crash injections
  std::uint32_t reclaim_delay = 23;  ///< steps a dead slot stays unreclaimed
  std::uint32_t max_concurrent_crashes = 1;
};

template <class System, class Checker>
RunResult run_crash_churn(SimWorkload<System>& wl, Checker& chk,
                          ChurnConfig cfg) {
  static_assert(detail::SupportsCrash<System>::value,
                "crash churn needs a step machine with crash/reclaim");
  util::Xoshiro256 rng(cfg.sched_seed ? cfg.sched_seed : 1);
  RunResult res;
  const std::string how = "churn-seed=" + std::to_string(cfg.sched_seed);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> dead;  // pid, at step
  std::vector<std::uint32_t> runnable;
  std::uint64_t next_crash = cfg.crash_period;
  for (;;) {
    // Reclaim dead slots whose grace period expired.
    while (!dead.empty() &&
           wl.total_steps() >= dead.front().second + cfg.reclaim_delay) {
      wl.reclaim(dead.front().first, chk);
      dead.erase(dead.begin());
      if (detail::bail(chk, res, wl, how)) goto out;
    }
    if (wl.done()) {
      // Only frozen stragglers can still hold unfinished scripts; recycle
      // them and let them finish (the run must end with every op done, or
      // the oracle would be vacuous on the tail).
      if (dead.empty()) break;
      for (const auto& d : dead) {
        wl.reclaim(d.first, chk);
        if (detail::bail(chk, res, wl, how)) goto out;
      }
      dead.clear();
      if (wl.done()) break;
    }
    runnable.clear();
    for (std::uint32_t p = 0; p < wl.system().n(); ++p) {
      if (!wl.proc_done(p)) runnable.push_back(p);
    }
    if (runnable.empty()) continue;  // everyone crashed; loop reclaims
    if (wl.total_steps() >= next_crash && runnable.size() > 1 &&
        dead.size() < cfg.max_concurrent_crashes) {
      const std::uint32_t v = runnable[rng.next_below(
          static_cast<std::uint32_t>(runnable.size()))];
      wl.crash(v, chk);
      dead.emplace_back(v, wl.total_steps());
      next_crash = wl.total_steps() + cfg.crash_period;
      if (detail::bail(chk, res, wl, how)) goto out;
      continue;
    }
    const std::uint32_t p =
        runnable[rng.next_below(static_cast<std::uint32_t>(runnable.size()))];
    wl.step(p, chk);
    if (detail::bail(chk, res, wl, how)) goto out;
  }
out:
  res.total_steps = wl.total_steps();
  res.max_ll_steps = wl.max_ll_steps();
  return res;
}

/// Re-executes a recorded schedule token-for-token (the format
/// schedule_string emits and invariant-violation messages embed): "P"
/// steps process P, "cP" crashes it, "rP" reclaims it. Stops at the end of
/// the tokens or when the workload completes; a token that is not
/// applicable (wrong config or seed) reports divergence instead of
/// asserting.
template <class System, class Checker>
RunResult run_replay(SimWorkload<System>& wl, Checker& chk,
                     const std::string& schedule) {
  RunResult res;
  std::size_t i = 0;
  while (i < schedule.size() && !wl.done()) {
    if (schedule[i] == ',' || schedule[i] == ' ') {
      ++i;
      continue;
    }
    char kind = 's';
    if (schedule[i] == 'c' || schedule[i] == 'r') kind = schedule[i++];
    if (i >= schedule.size() || schedule[i] < '0' || schedule[i] > '9') {
      res.ok = false;
      res.error = "replay: malformed token at offset " + std::to_string(i);
      break;
    }
    std::uint32_t p = 0;
    while (i < schedule.size() && schedule[i] >= '0' && schedule[i] <= '9') {
      p = p * 10 + static_cast<std::uint32_t>(schedule[i++] - '0');
    }
    const char* diverged = nullptr;
    if (p >= wl.system().n()) {
      diverged = "pid out of range";
    } else if (kind == 'c') {
      if (wl.crashed(p)) diverged = "crash of an already-crashed pid";
    } else if (kind == 'r') {
      if (!wl.crashed(p)) diverged = "reclaim of a live pid";
    } else if (wl.proc_done(p)) {
      diverged = "step of a done/crashed pid";
    }
    if (diverged) {
      res.ok = false;
      res.error = std::string("replay diverged (") + diverged +
                  "): check that N/W/ops/seed match the failing run";
      break;
    }
    if (kind == 'c' || kind == 'r') {
      if constexpr (detail::SupportsCrash<System>::value) {
        if (kind == 'c') {
          wl.crash(p, chk);
        } else {
          wl.reclaim(p, chk);
        }
      } else {
        res.ok = false;
        res.error = "replay: crash token for a crash-less step machine";
        break;
      }
    } else {
      wl.step(p, chk);
    }
    if (detail::bail(chk, res, wl, "replay")) break;
  }
  res.total_steps = wl.total_steps();
  res.max_ll_steps = wl.max_ll_steps();
  return res;
}

/// The anti-schedule: starve `victim`'s copy loop. Run the victim until its
/// next step is the copy validation (capped at victim_burst steps), run the
/// other processes round-robin until one lands a successful SC, then let
/// the victim take its now-doomed validation. Repeat until max_steps.
///
/// For the announce/help protocols the victim is rescued by a donation
/// within O(N) successful SCs, so its worst LL is flat in max_steps; the
/// retry strawman's victim never completes and system().steps_in_flight(
/// victim) grows linearly with max_steps.
template <class System, class Checker>
RunResult run_adversarial_anti(SimWorkload<System>& wl, Checker& chk,
                               std::uint32_t victim,
                               std::uint32_t victim_burst,
                               std::uint64_t max_steps) {
  RunResult res;
  const std::string how = "anti-adversary victim=" + std::to_string(victim);
  System& sys = wl.system();
  const std::uint32_t n = sys.n();
  std::uint32_t rr = victim;  // round-robin cursor over the adversaries
  while (wl.total_steps() < max_steps && !wl.done()) {
    // Victim slice: up to the brink of its validation.
    for (std::uint32_t k = 0; k < victim_burst; ++k) {
      if (wl.proc_done(victim) || sys.next_is_validate(victim) ||
          wl.total_steps() >= max_steps) {
        break;
      }
      wl.step(victim, chk);
      if (detail::bail(chk, res, wl, how)) goto out;
    }
    if (wl.proc_done(victim)) break;  // the victim survived its whole script
    // Adversary slice: writers run until enough successful SCs land to
    // doom the victim's validation (doom_delta: 1 for strict validation,
    // P+1 for the jp protocol's aged validation).
    {
      const std::uint64_t v0 = sys.version();
      bool progressed = false;
      while (sys.version() - v0 < sys.doom_delta() &&
             wl.total_steps() < max_steps) {
        std::uint32_t q = n;
        for (std::uint32_t i = 1; i <= n; ++i) {
          const std::uint32_t c = (rr + i) % n;
          if (c != victim && !wl.proc_done(c)) {
            q = c;
            break;
          }
        }
        if (q == n) break;  // no adversaries left
        rr = q;
        wl.step(q, chk);
        if (detail::bail(chk, res, wl, how)) goto out;
        progressed = true;
      }
      if (!progressed) {
        // Degenerate (N==1 or writers exhausted): the victim runs alone.
        wl.step(victim, chk);
        if (detail::bail(chk, res, wl, how)) goto out;
      } else if (sys.version() - v0 >= sys.doom_delta() &&
                 sys.next_is_validate(victim)) {
        // Only validate once an SC has actually landed; if the step
        // budget ran out mid-slice the validation would *succeed* and
        // hand the victim a completion the adversary never conceded.
        wl.step(victim, chk);  // the doomed validation
        if (detail::bail(chk, res, wl, how)) goto out;
      }
    }
  }
out:
  res.total_steps = wl.total_steps();
  res.max_ll_steps = wl.max_ll_steps();
  return res;
}

namespace detail {

template <class System, class Checker>
struct Enumerator {
  std::uint64_t max_schedules;
  EnumerateResult res;
  bool stop = false;

  void fail(const Checker& chk, const SimWorkload<System>& wl) {
    res.ok = false;
    // The enumerated schedule is the exact repro: feed it to --replay.
    res.error = chk.error() + " [repro: enumerated schedule=" +
                wl.schedule_string() + "]";
    stop = true;
  }

  // Depth-first over scheduling choice points. The default scheduler runs
  // `current` until it finishes its script; the choice of who runs first
  // and each context switch at a completion are free, branching over
  // EVERY runnable successor (not just one canonical pick — otherwise
  // schedules that resume a specific process after a completion would
  // silently cost a preemption). With budget left, every other step is
  // additionally a branch point where any live process may preempt.
  // `fresh_switch` marks the step right after a free choice, where
  // preempting would only replay a sibling free branch — suppressing it
  // keeps the enumeration duplicate-free. Recursion depth <= preemption
  // budget + crash budget + number of processes: the continue-arm is the
  // loop, not a recursive call.
  //
  // With crash budget, every step of `current` is additionally a branch
  // point where current crash-stops instead of stepping. Crashing only
  // the about-to-step process is a sound reduction: a crash is
  // protocol-inert (it only suppresses the victim's future steps), so any
  // execution with a crash is step-for-step identical to one where the
  // victim froze immediately after its own last step — or before its
  // first, which the free start/switch branches make it `current` for.
  // The budget therefore injects a crash at every protocol step of every
  // process without enumerating the redundant placements in between.
  void explore(SimWorkload<System> wl, Checker chk, std::uint32_t current,
               std::uint32_t preempts_left, std::uint32_t crashes_left,
               bool fresh_switch) {
    for (;;) {
      if (stop) return;
      if (wl.done()) {
        ++res.schedules_explored;
        if (wl.max_ll_steps() > res.max_ll_steps) {
          res.max_ll_steps = wl.max_ll_steps();
        }
        if (res.schedules_explored >= max_schedules) {
          res.truncated = true;
          stop = true;
        }
        return;
      }
      if (wl.proc_done(current)) {
        // Free switch: continue with the first runnable process, branch
        // recursively into each alternative successor.
        std::uint32_t first = wl.system().n();
        for (std::uint32_t q = 0; q < wl.system().n(); ++q) {
          if (wl.proc_done(q)) continue;
          if (first == wl.system().n()) {
            first = q;
            continue;
          }
          explore(wl, chk, q, preempts_left, crashes_left,
                  /*fresh_switch=*/true);
          if (stop) return;
        }
        assert(first < wl.system().n());
        current = first;
      } else if (!fresh_switch && preempts_left > 0) {
        for (std::uint32_t q = 0; q < wl.system().n(); ++q) {
          if (q == current || wl.proc_done(q)) continue;
          SimWorkload<System> wl2 = wl;
          Checker chk2 = chk;
          wl2.step(q, chk2);
          ++res.total_steps;
          if (!chk2.ok()) {
            fail(chk2, wl2);
            return;
          }
          explore(std::move(wl2), std::move(chk2), q, preempts_left - 1,
                  crashes_left, /*fresh_switch=*/false);
          if (stop) return;
        }
      }
      if constexpr (SupportsCrash<System>::value) {
        if (crashes_left > 0 && !wl.crashed(current)) {
          // Crash branch: current freezes here instead of taking this step.
          SimWorkload<System> wl2 = wl;
          Checker chk2 = chk;
          wl2.crash(current, chk2);
          if (!chk2.ok()) {
            fail(chk2, wl2);
            return;
          }
          explore(std::move(wl2), std::move(chk2), current, preempts_left,
                  crashes_left - 1, /*fresh_switch=*/true);
          if (stop) return;
        }
      }
      wl.step(current, chk);
      fresh_switch = false;
      ++res.total_steps;
      if (!chk.ok()) {
        fail(chk, wl);
        return;
      }
    }
  }
};

}  // namespace detail

/// CHESS-style bounded exhaustive search: explore every schedule with at
/// most max_preemptions preemptions and max_crashes crash-stop events (up
/// to max_schedules complete executions), checking after every step. The
/// choice of which process runs first is a free branch — it is not a
/// preemption — so the search really covers every schedule within the
/// budget regardless of who starts; with a crash budget, every protocol
/// step of every process doubles as a crash-stop injection point (see
/// Enumerator::explore for why that placement is exhaustive). Crashed
/// processes stay frozen to the end of the schedule — the live processes
/// must complete against their abandoned announces, donations and
/// in-flight retirements. The workload and checker passed in are templates
/// for the search's copies; they are left untouched.
template <class System, class Checker>
EnumerateResult enumerate_preemption_bounded(const SimWorkload<System>& wl,
                                             const Checker& chk,
                                             std::uint32_t max_preemptions,
                                             std::uint64_t max_schedules,
                                             std::uint32_t max_crashes = 0) {
  detail::Enumerator<System, Checker> e;
  e.max_schedules = max_schedules ? max_schedules : 1;
  for (std::uint32_t p = 0; p < wl.system().n() && !e.stop; ++p) {
    if (wl.proc_done(p)) continue;
    e.explore(wl, chk, p, max_preemptions, max_crashes,
              /*fresh_switch=*/true);
  }
  return e.res;
}

}  // namespace mwllsc::sim
