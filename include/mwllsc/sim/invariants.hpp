// Invariant checkers for the simulation harness.
//
// A checker is a copyable value the harness calls after every simulator
// step (on_step) and after every completed operation (on_op); ok() turns
// false, with error() explaining, the first time anything is violated.
// Checkers hold no pointer into the system — they always inspect the
// instance the harness passes — so the CHESS enumerator can copy
// (workload, checker) pairs freely at preemption branch points.
//
//   * NullChecker         accepts everything (pure measurement runs);
//   * JpInvariantChecker  the paper's structural invariants on the jp
//     step machine plus a sequential-spec linearizability oracle:
//       I1      every buffer has exactly one owner: the object (current),
//               a process's spare, a process's exchange side, or a
//               retirement-ring cell;
//       I2      exactly one bank write (the ring retirement) per
//               successful SC, counting the in-flight resolutions;
//       4W+12   no LL exceeds the paper's step bound and the defensive
//               retry arm never fires (the help guarantee holds);
//       oracle  every LL returns the abstract value of its claimed
//               linearization version, which lies inside the op's
//               invocation/response window; SC succeeds iff no successful
//               SC intervened since the matching LL (the Brown–Ellen–
//               Ruppert "pragmatic primitives" contract: failures are
//               semantic, never spurious); VL mirrors SC.
//
// Crash-stop schedules need no weakening of any check: the harness re-runs
// on_step at every crash and reclaim event, so a frozen process must leave
// the ownership census and the bank-write equation exact (its buffers stay
// owned, its in-flight retirement stays pending), reclamation must restore
// them (adopting donations, completing the pending bank write), and the
// 4W+12 bound and the oracle keep applying to every op the *live*
// processes complete — which is precisely the wait-freedom claim under
// crashes: nobody who keeps taking steps is ever blocked or starved by a
// process that stopped.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/harness.hpp"
#include "sim/sim_jp.hpp"

namespace mwllsc::sim {

/// Checker that checks nothing: for runs that only measure step counts.
struct NullChecker {
  template <class System>
  void on_step(const System&) {}
  template <class System>
  void on_op(const System&, const OpRecord&) {}
  bool ok() const { return true; }
  const std::string& error() const {
    static const std::string kEmpty;
    return kEmpty;
  }
};

class JpInvariantChecker {
 public:
  explicit JpInvariantChecker(const SimJpSystem& sys)
      : n_(sys.n()),
        w_(sys.w()),
        nbufs_(sys.num_bufs()),
        ring_size_(sys.ring_size()) {
    history_.push_back(sys.current_value());
  }

  void on_step(const SimJpSystem& sys) {
    if (failed_) return;
    ++steps_seen_;
    // Track the abstract state: one step can apply at most one successful
    // SC, whose installed value is the new current buffer's content (the
    // buffer is unwritable while current, so reading it now is exact).
    if (sys.version() == history_.size()) {
      history_.push_back(sys.current_value());
    }
    if (sys.version() + 1 != history_.size()) {
      return fail("abstract version jumped: version=%llu history=%zu",
                  ull(sys.version()), history_.size());
    }
    check_i1(sys);
    check_i2(sys);
    if (sys.ll_retries_total() > 0) {
      return fail("defensive LL retry fired at step %llu — the 4W+12 "
                  "help guarantee is broken",
                  ull(steps_seen_));
    }
  }

  void on_op(const SimJpSystem& sys, const OpRecord& rec) {
    if (failed_) return;
    (void)sys;
    switch (rec.type) {
      case OpType::kLl: {
        if (rec.steps > SimJpSystem::ll_step_bound(n_, w_)) {
          return fail("LL(p%u) took %u steps, over the 4W+12 bound of %u",
                      rec.pid, rec.steps,
                      SimJpSystem::ll_step_bound(n_, w_));
        }
        if (rec.lin_version < rec.start_version ||
            rec.lin_version > rec.end_version) {
          return fail(
              "LL(p%u) linearization version %llu outside its window "
              "[%llu, %llu]",
              rec.pid, ull(rec.lin_version), ull(rec.start_version),
              ull(rec.end_version));
        }
        if (rec.lin_version >= history_.size() ||
            rec.value != history_[rec.lin_version]) {
          return fail("LL(p%u) returned a value that was never the "
                      "variable's state at its claimed version %llu%s",
                      rec.pid, ull(rec.lin_version),
                      rec.helped ? " (helped path)" : "");
        }
        break;
      }
      case OpType::kSc: {
        const bool should_succeed =
            rec.had_link && rec.version_at_sc == rec.link_version;
        if (rec.success != should_succeed) {
          return fail(
              "SC(p%u) %s but link_version=%llu version_at_sc=%llu "
              "had_link=%d — SC failures must be semantic, never spurious",
              rec.pid, rec.success ? "succeeded" : "failed",
              ull(rec.link_version), ull(rec.version_at_sc),
              rec.had_link ? 1 : 0);
        }
        if (rec.success) {
          const std::uint64_t installed = rec.version_at_sc + 1;
          if (installed >= history_.size() ||
              history_[installed] != rec.value) {
            return fail("SC(p%u) succeeded but version %llu's abstract "
                        "value is not the value it wrote",
                        rec.pid, ull(installed));
          }
        }
        break;
      }
      case OpType::kVl: {
        const bool should_hold =
            rec.had_link && rec.end_version == rec.link_version;
        if (rec.success != should_hold) {
          return fail("VL(p%u) returned %d but link_version=%llu "
                      "version=%llu had_link=%d",
                      rec.pid, rec.success ? 1 : 0, ull(rec.link_version),
                      ull(rec.end_version), rec.had_link ? 1 : 0);
        }
        break;
      }
    }
  }

  bool ok() const { return !failed_; }
  const std::string& error() const { return error_; }

 private:
  static unsigned long long ull(std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  }

  void check_i1(const SimJpSystem& sys) {
    owners_.assign(nbufs_, 0);
    bump_owner(sys.current_buf());
    for (std::uint32_t p = 0; p < n_; ++p) {
      bump_owner(sys.spare_of(p));
      bump_owner(sys.exchange_buf_of(p));
    }
    for (std::uint32_t j = 0; j < ring_size_; ++j) {
      bump_owner(sys.ring_buf(j));
    }
    for (std::uint32_t b = 0; b < nbufs_; ++b) {
      if (owners_[b] != 1) {
        return fail("I1 violated at step %llu: buffer %u has %d owners "
                    "(want exactly 1: current, a spare, an exchange "
                    "slot, or a ring cell)",
                    ull(steps_seen_), b, owners_[b]);
      }
    }
  }

  void bump_owner(std::uint32_t b) {
    if (b < nbufs_) {
      ++owners_[b];
    } else {
      fail("I1 violated: out-of-range buffer index %u", b);
    }
  }

  void check_i2(const SimJpSystem& sys) {
    // The ring resolution is its own step after the X SC, so completed
    // plus in-flight bank writes must exactly cover the successful SCs.
    if (sys.bank_writes_total() + sys.pending_bank_writes() !=
            sys.version() ||
        sys.sc_success_total() != sys.version()) {
      fail("I2 violated at step %llu: %llu+%llu bank writes "
           "(done+pending), %llu successful SCs, version %llu (want one "
           "bank write per successful SC)",
           ull(steps_seen_), ull(sys.bank_writes_total()),
           ull(sys.pending_bank_writes()), ull(sys.sc_success_total()),
           ull(sys.version()));
    }
  }

  template <typename... Args>
  void fail(const char* fmt, Args... args) {
    if (failed_) return;
    char buf[256];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    failed_ = true;
    error_ = buf;
  }

  std::uint32_t n_;
  std::uint32_t w_;
  std::uint32_t nbufs_;
  std::uint32_t ring_size_;
  std::uint64_t steps_seen_ = 0;
  bool failed_ = false;
  std::string error_;
  std::vector<std::vector<std::uint64_t>> history_;  ///< version -> value
  std::vector<int> owners_;  ///< scratch for the I1 ownership census
};

/// The strongest checker available for a system, picked by overload: the
/// full invariant checker for the jp step machine, NullChecker for systems
/// whose internals no checker models yet. Drivers and tests share this so
/// adding a checker upgrades every call site at once. Call it on the
/// workload's own system (wl.system()) — never on a moved-from shell.
inline JpInvariantChecker make_checker(const SimJpSystem& sys) {
  return JpInvariantChecker(sys);
}
template <class System>
NullChecker make_checker(const System&) {
  return NullChecker{};
}

}  // namespace mwllsc::sim
