// Step machine for the Anderson–Moir-style baseline (baseline/am_llsc.hpp):
// same announce/probe schedule as the paper's algorithm, but helping is an
// O(W) value copy through a per-(helper, helpee) handoff row instead of an
// O(1) buffer-ownership exchange, and every fast-path LL pays an extra
// private W-word copy (the value a later successful SC donates from).
//
// One step() call is one memory access (W-word copies are W steps — the
// lastval and handoff copies included, which is exactly the time price the
// ablation E6(a) measures). Ghost versioning as in sim_jp.hpp: the slot
// carries the abstract version whose value a donation holds so the oracle
// can validate helped reads. Wait-free with the same O(N·W) implemented
// bound as jp; space is O(N^2 W) from the handoff matrix.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/harness.hpp"

namespace mwllsc::sim {

class SimAmSystem {
 public:
  SimAmSystem(std::uint32_t nprocs, std::uint32_t words,
              std::vector<std::uint64_t> init)
      : n_(nprocs),
        w_(words),
        nbufs_(nprocs + 1),
        buf_(static_cast<std::size_t>(nbufs_) * words, 0),
        handoff_(static_cast<std::size_t>(nprocs) * nprocs * words, 0),
        lastval_(static_cast<std::size_t>(nprocs) * words, 0),
        slot_(nprocs),
        procs_(nprocs) {
    assert(nprocs >= 1 && words >= 1 && init.size() == words);
    x_ = X{0, nprocs, 0};
    for (std::uint32_t i = 0; i < w_; ++i) buf_row(x_.buf)[i] = init[i];
    for (std::uint32_t p = 0; p < n_; ++p) procs_[p].spare = p;
  }

  std::uint32_t n() const { return n_; }
  std::uint32_t w() const { return w_; }

  // ------------------------------------------------------------- workload
  bool idle(std::uint32_t p) const {
    return procs_[p].phase == Phase::kIdle;
  }

  void begin_ll(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.phase == Phase::kIdle);
    pr.rec = OpRecord{};
    pr.rec.type = OpType::kLl;
    pr.rec.pid = p;
    pr.rec.start_version = x_.tag;
    pr.tmp.assign(w_, 0);
    pr.phase = Phase::kLlAnnounce;
  }

  void begin_sc(std::uint32_t p, std::vector<std::uint64_t> v) {
    Proc& pr = procs_[p];
    assert(pr.phase == Phase::kIdle && v.size() == w_);
    pr.rec = OpRecord{};
    pr.rec.type = OpType::kSc;
    pr.rec.pid = p;
    pr.rec.start_version = x_.tag;
    pr.rec.had_link = pr.link_valid;
    if (!pr.link_valid) {
      pr.phase = Phase::kScFailFast;
      return;
    }
    pr.link_valid = false;
    pr.rec.value = v;  // ghost: what the oracle expects installed
    pr.scv = std::move(v);
    pr.idx = 0;
    pr.phase = Phase::kScCopyIn;
  }

  void begin_vl(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.phase == Phase::kIdle);
    pr.rec = OpRecord{};
    pr.rec.type = OpType::kVl;
    pr.rec.pid = p;
    pr.rec.start_version = x_.tag;
    pr.rec.had_link = pr.link_valid && pr.linked;
    pr.phase = Phase::kVl;
  }

  StepResult step(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.phase != Phase::kIdle);
    ++pr.rec.steps;
    switch (pr.phase) {
      case Phase::kLlAnnounce:
        pr.seq += 1;
        slot_[p] = Slot{kWaiting, 0, pr.seq, 0};
        pr.phase = Phase::kLlReadX;
        return {};
      case Phase::kLlReadX:
        pr.link = x_;
        pr.linked = true;
        pr.idx = 0;
        pr.phase = Phase::kLlCopy;
        return {};
      case Phase::kLlCopy:
        pr.tmp[pr.idx] = buf_row(pr.link.buf)[pr.idx];
        if (++pr.idx == w_) pr.phase = Phase::kLlValidate;
        return {};
      case Phase::kLlValidate:
        pr.phase = (x_ == pr.link) ? Phase::kLlWithdraw : Phase::kLlCheckA;
        return {};
      case Phase::kLlWithdraw: {
        Slot& s = slot_[p];
        if (s.state == kWaiting && s.seq == pr.seq) {
          s = Slot{kIdle, 0, pr.seq, 0};
        } else {
          assert(s.state == kHelped && s.seq == pr.seq);
          pr.rec.helped = true;  // donated but unused
        }
        pr.idx = 0;
        pr.phase = Phase::kLlSaveLast;
        return {};
      }
      case Phase::kLlSaveLast:
        // The extra copy: keep the value privately so a later successful
        // SC can donate it — the am time price E6(a) isolates.
        last_row(p)[pr.idx] = pr.tmp[pr.idx];
        if (++pr.idx < w_) return {};
        pr.ll_buf = pr.link.buf;
        pr.link_valid = true;
        pr.rec.success = true;
        pr.rec.value = pr.tmp;
        pr.rec.lin_version = pr.link.tag;
        return complete(pr);
      case Phase::kLlCheckA: {
        const Slot s = slot_[p];
        if (s.state == kHelped && s.seq == pr.seq) {
          pr.donor = s.donor;
          pr.ghost_lin = s.ghost_version;
          pr.idx = 0;
          pr.phase = Phase::kLlCopyHandoff;
        } else {
          pr.phase = Phase::kLlReadX;
        }
        return {};
      }
      case Phase::kLlCopyHandoff:
        // The helper's handoff row holds a consistent value and is not
        // rewritten until we announce again.
        pr.tmp[pr.idx] = handoff_row(pr.donor, p)[pr.idx];
        if (++pr.idx < w_) return {};
        pr.link_valid = false;
        pr.rec.success = true;
        pr.rec.helped = true;
        pr.rec.value = pr.tmp;
        pr.rec.lin_version = pr.ghost_lin;
        return complete(pr);
      case Phase::kScFailFast:
        pr.rec.success = false;
        pr.rec.link_version = kNoLink;
        pr.rec.version_at_sc = x_.tag;
        return complete(pr);
      case Phase::kScCopyIn:
        buf_row(pr.spare)[pr.idx] = pr.scv[pr.idx];
        if (++pr.idx == w_) pr.phase = Phase::kScProbe;
        return {};
      case Phase::kScProbe:
        pr.target = static_cast<std::uint32_t>((pr.link.tag + 1) % n_);
        pr.seen = slot_[pr.target];
        pr.phase = Phase::kScX;
        return {};
      case Phase::kScX: {
        pr.rec.link_version = pr.link.tag;
        pr.rec.version_at_sc = x_.tag;
        const bool won = pr.linked && x_ == pr.link;
        pr.linked = false;
        if (!won) {
          pr.rec.success = false;
          return complete(pr);
        }
        x_ = X{p, pr.spare, pr.link.tag + 1};
        ++sc_success_;
        pr.spare = pr.ll_buf;  // retire the previously-current buffer
        ++bank_writes_;
        pr.rec.success = true;
        if (pr.target != p && pr.seen.state == kWaiting) {
          pr.idx = 0;
          pr.phase = Phase::kScHelpCopy;
          return {};
        }
        return complete(pr);
      }
      case Phase::kScHelpCopy:
        // Copy-based help: O(W) through our handoff row, written before
        // the CAS (wasted work if the CAS loses).
        handoff_row(p, pr.target)[pr.idx] = last_row(p)[pr.idx];
        if (++pr.idx == w_) pr.phase = Phase::kScHelpCas;
        return {};
      case Phase::kScHelpCas: {
        Slot& s = slot_[pr.target];
        if (s.state == kWaiting && s.seq == pr.seen.seq) {
          s = Slot{kHelped, p, s.seq, pr.rec.link_version};
          ++helps_given_;
        }
        return complete(pr);
      }
      case Phase::kVl:
        pr.rec.success = pr.link_valid && pr.linked && x_ == pr.link;
        pr.rec.link_version = pr.rec.had_link ? pr.link.tag : kNoLink;
        return complete(pr);
      case Phase::kIdle:
        break;
    }
    assert(false && "step on idle process");
    return {};
  }

  // ------------------------------------------------- scheduler / checker
  bool next_is_validate(std::uint32_t p) const {
    return procs_[p].phase == Phase::kLlValidate;
  }

  /// Strict validation: a single successful SC dooms a pending validate.
  std::uint64_t doom_delta() const { return 1; }

  std::uint32_t steps_in_flight(std::uint32_t p) const {
    return idle(p) ? 0 : procs_[p].rec.steps;
  }

  std::uint64_t version() const { return x_.tag; }

  std::vector<std::uint64_t> current_value() const {
    const std::uint64_t* row = buf_row(x_.buf);
    return std::vector<std::uint64_t>(row, row + w_);
  }

  /// Same shape as SimJpSystem::ll_step_bound — am shares the announce/help
  /// schedule, so its LL is served within the same number of successful
  /// SCs; the lastval and handoff copies are W-step terms already covered
  /// by the formula's slack.
  static std::uint32_t ll_step_bound(std::uint32_t n, std::uint32_t w) {
    return (n + 3) * (w + 3) + 2 * w + 4;
  }

  std::uint64_t bank_writes_total() const { return bank_writes_; }
  std::uint64_t sc_success_total() const { return sc_success_; }
  std::uint64_t helps_given_total() const { return helps_given_; }

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kLlAnnounce,
    kLlReadX,
    kLlCopy,
    kLlValidate,
    kLlWithdraw,
    kLlSaveLast,
    kLlCheckA,
    kLlCopyHandoff,
    kScFailFast,
    kScCopyIn,
    kScProbe,
    kScX,
    kScHelpCopy,
    kScHelpCas,
    kVl,
  };

  static constexpr std::uint8_t kIdle = 0;
  static constexpr std::uint8_t kWaiting = 1;
  static constexpr std::uint8_t kHelped = 2;
  static constexpr std::uint64_t kNoLink = ~std::uint64_t{0};

  struct X {
    std::uint32_t pid = 0;
    std::uint32_t buf = 0;
    std::uint64_t tag = 0;
    bool operator==(const X& o) const {
      return pid == o.pid && buf == o.buf && tag == o.tag;
    }
  };

  /// Announce word: state + donor pid + seq, plus the oracle's ghost
  /// version for the handed-off value.
  struct Slot {
    std::uint8_t state = kIdle;
    std::uint32_t donor = 0;
    std::uint64_t seq = 0;
    std::uint64_t ghost_version = 0;
  };

  struct Proc {
    Phase phase = Phase::kIdle;
    std::uint32_t spare = 0;
    std::uint32_t ll_buf = 0;
    std::uint64_t seq = 0;
    bool link_valid = false;
    bool linked = false;
    X link;
    OpRecord rec;
    std::uint32_t idx = 0;
    std::uint32_t target = 0;
    std::uint32_t donor = 0;
    std::uint64_t ghost_lin = 0;
    Slot seen;
    std::vector<std::uint64_t> tmp;
    std::vector<std::uint64_t> scv;
  };

  StepResult complete(Proc& pr) {
    pr.rec.end_version = x_.tag;
    pr.phase = Phase::kIdle;
    StepResult r;
    r.completed = true;
    r.rec = pr.rec;
    return r;
  }

  std::uint64_t* buf_row(std::uint32_t b) {
    return buf_.data() + static_cast<std::size_t>(b) * w_;
  }
  const std::uint64_t* buf_row(std::uint32_t b) const {
    return buf_.data() + static_cast<std::size_t>(b) * w_;
  }
  std::uint64_t* handoff_row(std::uint32_t helper, std::uint32_t helpee) {
    return handoff_.data() +
           (static_cast<std::size_t>(helper) * n_ + helpee) * w_;
  }
  std::uint64_t* last_row(std::uint32_t p) {
    return lastval_.data() + static_cast<std::size_t>(p) * w_;
  }

  std::uint32_t n_;
  std::uint32_t w_;
  std::uint32_t nbufs_;
  X x_;
  std::vector<std::uint64_t> buf_;
  std::vector<std::uint64_t> handoff_;
  std::vector<std::uint64_t> lastval_;
  std::vector<Slot> slot_;
  std::vector<Proc> procs_;
  std::uint64_t sc_success_ = 0;
  std::uint64_t bank_writes_ = 0;
  std::uint64_t helps_given_ = 0;
};

}  // namespace mwllsc::sim
