// Step machine for the paper's algorithm (core/mwllsc.hpp): the same
// protocol — 2N+1 buffers, announce slots, ownership-exchange helping keyed
// to X's tag — re-expressed as an explicit state machine so the simulation
// harness can interleave processes one memory access at a time.
//
// One step() call is one memory access of the protocol (copying a W-word
// buffer is W steps). The machine also carries *ghost* state the real
// implementation cannot afford: each announce slot remembers the abstract
// version whose value a donation holds, and each completed op reports its
// claimed linearization version, so the sequential-spec oracle
// (invariants.hpp) can validate every value against the unique write that
// produced it. Ghost state is observational only; it never influences a
// protocol transition.
//
// The abstract version is X's tag: version v's value is whatever the v-th
// successful SC installed. Invariants exposed to JpInvariantChecker:
//   I1  every buffer has exactly one owner (current / a spare / an
//       exchange slot) — current_buf(), spare_of(), exchange_buf_of();
//   I2  exactly one bank write (Line 13 retire) per successful SC —
//       bank_writes_total() == sc_success_total() == version().
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/harness.hpp"

namespace mwllsc::sim {

class SimJpSystem {
 public:
  SimJpSystem(std::uint32_t nprocs, std::uint32_t words,
              std::vector<std::uint64_t> init)
      : n_(nprocs),
        w_(words),
        nbufs_(2 * nprocs + 1),
        buf_(static_cast<std::size_t>(nbufs_) * words, 0),
        slot_(nprocs),
        procs_(nprocs) {
    assert(nprocs >= 1 && words >= 1 && init.size() == words);
    x_ = X{0, 2 * nprocs, 0};
    for (std::uint32_t i = 0; i < w_; ++i) buf_row(x_.buf)[i] = init[i];
    for (std::uint32_t p = 0; p < n_; ++p) {
      procs_[p].spare = p;
      procs_[p].xbuf = n_ + p;
      slot_[p] = Slot{kIdle, n_ + p, 0, 0};
    }
  }

  std::uint32_t n() const { return n_; }
  std::uint32_t w() const { return w_; }

  // ------------------------------------------------------------- workload
  bool idle(std::uint32_t p) const {
    return procs_[p].phase == Phase::kIdle;
  }

  void begin_ll(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.phase == Phase::kIdle);
    pr.rec = OpRecord{};
    pr.rec.type = OpType::kLl;
    pr.rec.pid = p;
    pr.rec.start_version = x_.tag;
    pr.tmp.assign(w_, 0);
    pr.phase = Phase::kLlAnnounce;
  }

  void begin_sc(std::uint32_t p, std::vector<std::uint64_t> v) {
    Proc& pr = procs_[p];
    assert(pr.phase == Phase::kIdle && v.size() == w_);
    pr.rec = OpRecord{};
    pr.rec.type = OpType::kSc;
    pr.rec.pid = p;
    pr.rec.start_version = x_.tag;
    pr.rec.had_link = pr.link_valid;
    if (!pr.link_valid) {
      pr.phase = Phase::kScFailFast;  // O(1) semantic failure
      return;
    }
    pr.link_valid = false;  // the link is consumed either way
    pr.rec.value = v;       // ghost: what the oracle expects installed
    pr.scv = std::move(v);
    pr.idx = 0;
    pr.phase = Phase::kScCopyIn;
  }

  void begin_vl(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.phase == Phase::kIdle);
    pr.rec = OpRecord{};
    pr.rec.type = OpType::kVl;
    pr.rec.pid = p;
    pr.rec.start_version = x_.tag;
    pr.rec.had_link = pr.link_valid && pr.linked;
    pr.phase = Phase::kVl;
  }

  StepResult step(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.phase != Phase::kIdle);
    ++pr.rec.steps;
    switch (pr.phase) {
      case Phase::kLlAnnounce:
        pr.seq += 1;
        slot_[p] = Slot{kWaiting, pr.xbuf, pr.seq, 0};
        pr.phase = Phase::kLlReadX;
        return {};
      case Phase::kLlReadX:
        pr.link = x_;  // the engine-level LL on X
        pr.linked = true;
        pr.idx = 0;
        pr.phase = Phase::kLlCopy;
        return {};
      case Phase::kLlCopy:
        pr.tmp[pr.idx] = buf_row(pr.link.buf)[pr.idx];
        if (++pr.idx == w_) pr.phase = Phase::kLlValidate;
        return {};
      case Phase::kLlValidate:
        pr.phase = (x_ == pr.link) ? Phase::kLlWithdraw : Phase::kLlCheckA;
        return {};
      case Phase::kLlWithdraw: {
        // CAS A[p]: WAITING -> IDLE. Failure means a donation raced in
        // after our validation; the fast-path value still stands (it
        // linearizes at the validated read), we just adopt the donated
        // buffer as our new exchange buffer — the donor took ours.
        Slot& s = slot_[p];
        if (s.state == kWaiting && s.seq == pr.seq) {
          s = Slot{kIdle, pr.xbuf, pr.seq, 0};
        } else {
          assert(s.state == kHelped && s.seq == pr.seq);
          pr.xbuf = s.buf;
          pr.rec.helped = true;
        }
        pr.ll_buf = pr.link.buf;
        pr.link_valid = true;
        pr.rec.success = true;
        pr.rec.value = pr.tmp;
        pr.rec.lin_version = pr.link.tag;
        return complete(pr);
      }
      case Phase::kLlCheckA: {
        const Slot s = slot_[p];  // Line 4: did a helper serve us?
        if (s.state == kHelped && s.seq == pr.seq) {
          pr.dbuf = s.buf;
          pr.ghost_lin = s.ghost_version;
          pr.idx = 0;
          pr.phase = Phase::kLlCopyDonated;
        } else {
          pr.phase = Phase::kLlReadX;  // retry the copy
        }
        return {};
      }
      case Phase::kLlCopyDonated:
        // Line 7: the donated buffer is privately owned now; no validation.
        pr.tmp[pr.idx] = buf_row(pr.dbuf)[pr.idx];
        if (++pr.idx < w_) return {};
        pr.xbuf = pr.dbuf;
        pr.link_valid = false;  // a successful SC already intervened
        pr.rec.success = true;
        pr.rec.helped = true;
        pr.rec.value = pr.tmp;
        pr.rec.lin_version = pr.ghost_lin;
        return complete(pr);
      case Phase::kScFailFast:
        pr.rec.success = false;
        pr.rec.link_version = kNoLink;
        pr.rec.version_at_sc = x_.tag;
        return complete(pr);
      case Phase::kScCopyIn:
        buf_row(pr.spare)[pr.idx] = pr.scv[pr.idx];
        if (++pr.idx == w_) pr.phase = Phase::kScProbe;
        return {};
      case Phase::kScProbe:
        // The winner of tag T+1 probes A[(T+1) mod N]; consecutive
        // successful SCs sweep every slot.
        pr.target = static_cast<std::uint32_t>((pr.link.tag + 1) % n_);
        pr.seen = slot_[pr.target];
        pr.phase = Phase::kScX;
        return {};
      case Phase::kScX: {
        pr.rec.link_version = pr.link.tag;
        pr.rec.version_at_sc = x_.tag;
        const bool won = pr.linked && x_ == pr.link;
        pr.linked = false;  // the engine link is consumed either way
        if (!won) {
          pr.rec.success = false;
          return complete(pr);
        }
        x_ = X{p, pr.spare, pr.link.tag + 1};
        ++sc_success_;
        // Line 13, the bank write: retire the previously-current buffer
        // into our spare slot (I2: exactly one per successful SC).
        pr.retired = pr.ll_buf;
        pr.spare = pr.retired;
        ++bank_writes_;
        pr.rec.success = true;
        if (pr.target != p && pr.seen.state == kWaiting) {
          pr.phase = Phase::kScHelp;
          return {};
        }
        return complete(pr);
      }
      case Phase::kScHelp: {
        // Ownership exchange: CAS A[target] from the exact WAITING word we
        // probed to HELPED(retired), taking the offered buffer in return.
        // The retired buffer holds the value that was current the instant
        // before our SC — abstract version link.tag (ghost).
        Slot& s = slot_[pr.target];
        if (s.state == kWaiting && s.seq == pr.seen.seq &&
            s.buf == pr.seen.buf) {
          s = Slot{kHelped, pr.retired, s.seq, pr.rec.link_version};
          pr.spare = pr.seen.buf;
          ++helps_given_;
        }
        return complete(pr);
      }
      case Phase::kVl:
        pr.rec.success = pr.link_valid && pr.linked && x_ == pr.link;
        pr.rec.link_version = pr.rec.had_link ? pr.link.tag : kNoLink;
        return complete(pr);
      case Phase::kIdle:
        break;
    }
    assert(false && "step on idle process");
    return {};
  }

  // ------------------------------------------------- scheduler / checker
  bool next_is_validate(std::uint32_t p) const {
    return procs_[p].phase == Phase::kLlValidate;
  }

  std::uint32_t steps_in_flight(std::uint32_t p) const {
    return idle(p) ? 0 : procs_[p].rec.steps;
  }

  std::uint64_t version() const { return x_.tag; }

  std::vector<std::uint64_t> current_value() const {
    const std::uint64_t* row = buf_row(x_.buf);
    return std::vector<std::uint64_t>(row, row + w_);
  }

  /// Worst-case LL steps of the *implemented* protocol (DESIGN.md §2): the
  /// announce (1), at most N+2 failed copy attempts plus the final one,
  /// each costing read-X + W-word copy + validate + announce check (W+3),
  /// and the helped exit's W-word donated copy — O(N·W), against the
  /// paper's full-protocol O(W) target of 4W+12.
  static std::uint32_t ll_step_bound(std::uint32_t n, std::uint32_t w) {
    return (n + 3) * (w + 3) + 2 * w + 4;
  }

  std::uint32_t num_bufs() const { return nbufs_; }
  std::uint32_t current_buf() const { return x_.buf; }
  std::uint32_t spare_of(std::uint32_t p) const { return procs_[p].spare; }

  /// The buffer process p owns through its exchange side: the slot's buffer
  /// while an announce/donation is posted, else the private xbuf (which the
  /// slot's stale IDLE word mirrors).
  std::uint32_t exchange_buf_of(std::uint32_t p) const {
    const Slot& s = slot_[p];
    return s.state == kIdle ? procs_[p].xbuf : s.buf;
  }

  std::uint64_t bank_writes_total() const { return bank_writes_; }
  std::uint64_t sc_success_total() const { return sc_success_; }
  std::uint64_t helps_given_total() const { return helps_given_; }

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kLlAnnounce,
    kLlReadX,
    kLlCopy,
    kLlValidate,
    kLlWithdraw,
    kLlCheckA,
    kLlCopyDonated,
    kScFailFast,
    kScCopyIn,
    kScProbe,
    kScX,
    kScHelp,
    kVl,
  };

  static constexpr std::uint8_t kIdle = 0;
  static constexpr std::uint8_t kWaiting = 1;
  static constexpr std::uint8_t kHelped = 2;
  static constexpr std::uint64_t kNoLink = ~std::uint64_t{0};

  /// The 1-word LL/SC variable X: descriptor <pid, buf> plus the sequence
  /// tag, which doubles as the abstract version.
  struct X {
    std::uint32_t pid = 0;
    std::uint32_t buf = 0;
    std::uint64_t tag = 0;
    bool operator==(const X& o) const {
      return pid == o.pid && buf == o.buf && tag == o.tag;
    }
  };

  /// Announce slot plus ghost: the abstract version whose value a donated
  /// buffer holds (set by the donor, read only by the oracle).
  struct Slot {
    std::uint8_t state = kIdle;
    std::uint32_t buf = 0;
    std::uint64_t seq = 0;
    std::uint64_t ghost_version = 0;
  };

  struct Proc {
    Phase phase = Phase::kIdle;
    // Durable protocol state.
    std::uint32_t spare = 0;
    std::uint32_t xbuf = 0;
    std::uint32_t ll_buf = 0;
    std::uint64_t seq = 0;
    bool link_valid = false;
    bool linked = false;
    X link;
    // In-flight op state.
    OpRecord rec;
    std::uint32_t idx = 0;
    std::uint32_t target = 0;
    std::uint32_t dbuf = 0;
    std::uint32_t retired = 0;
    std::uint64_t ghost_lin = 0;
    Slot seen;
    std::vector<std::uint64_t> tmp;
    std::vector<std::uint64_t> scv;
  };

  StepResult complete(Proc& pr) {
    pr.rec.end_version = x_.tag;
    pr.phase = Phase::kIdle;
    StepResult r;
    r.completed = true;
    r.rec = pr.rec;
    return r;
  }

  std::uint64_t* buf_row(std::uint32_t b) {
    return buf_.data() + static_cast<std::size_t>(b) * w_;
  }
  const std::uint64_t* buf_row(std::uint32_t b) const {
    return buf_.data() + static_cast<std::size_t>(b) * w_;
  }

  std::uint32_t n_;
  std::uint32_t w_;
  std::uint32_t nbufs_;
  X x_;
  std::vector<std::uint64_t> buf_;
  std::vector<Slot> slot_;
  std::vector<Proc> procs_;
  std::uint64_t sc_success_ = 0;
  std::uint64_t bank_writes_ = 0;
  std::uint64_t helps_given_ = 0;
};

}  // namespace mwllsc::sim
