// Step machine for the paper's full protocol (core/mwllsc.hpp): 2N+R+1
// buffers, aged seqlock validation (accept drift <= P), pre-SC helping
// through the announce slots keyed to X's tag mod P, and the aged
// retirement ring — re-expressed as an explicit state machine so the
// simulation harness can interleave processes one memory access at a time.
//
// One step() call is one memory access of the protocol (copying a W-word
// buffer is W steps). The machine also carries *ghost* state the real
// implementation cannot afford: each announce slot remembers the abstract
// version whose value a donation holds, and each completed op reports its
// claimed linearization version, so the sequential-spec oracle
// (invariants.hpp) can validate every value against the unique write that
// produced it. Ghost state is observational only; it never influences a
// protocol transition.
//
// The abstract version is X's tag: version v's value is whatever the v-th
// successful SC installed. Invariants exposed to JpInvariantChecker:
//   I1  every buffer has exactly one owner (current / a spare / an
//       exchange side / a ring cell) — current_buf(), spare_of(),
//       exchange_buf_of(), ring_buf();
//   I2  exactly one bank write (ring retirement) per successful SC —
//       bank_writes_total() + pending_bank_writes() == sc_success_total()
//       == version() (the ring resolution is its own step after the X SC,
//       so it may lag the version by the in-flight retirements);
//   4W+12  no LL takes more steps than the paper's bound, and the
//       defensive retry arm never fires (ll_retries_total() == 0).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/harness.hpp"

namespace mwllsc::sim {

class SimJpSystem {
 public:
  SimJpSystem(std::uint32_t nprocs, std::uint32_t words,
              std::vector<std::uint64_t> init)
      : n_(nprocs),
        w_(words),
        p2_(next_pow2(nprocs)),
        ring_size_(p2_ < 2 ? 2 : p2_),
        nbufs_(2 * nprocs + ring_size_ + 1),
        buf_(static_cast<std::size_t>(nbufs_) * words, 0),
        slot_(nprocs),
        ring_(ring_size_),
        procs_(nprocs) {
    assert(nprocs >= 1 && words >= 1 && init.size() == words);
    x_ = X{0, 2 * nprocs + ring_size_, 0};
    for (std::uint32_t i = 0; i < w_; ++i) buf_row(x_.buf)[i] = init[i];
    for (std::uint32_t p = 0; p < n_; ++p) {
      procs_[p].spare = p;
      procs_[p].xbuf = n_ + p;
      slot_[p] = Slot{kIdle, n_ + p, 0, 0};
    }
    // Ring cell j seeds buffer 2N+j, already aged a full lap (tag j-R; the
    // sim's tags are unbounded 64-bit, so "j-R" wraps mod 2^64 for j < R
    // and the swap condition handles it like the real 46-bit envelope).
    for (std::uint32_t j = 0; j < ring_size_; ++j) {
      ring_[j] = RingCell{2 * n_ + j, std::uint64_t{j} - ring_size_};
    }
  }

  std::uint32_t n() const { return n_; }
  std::uint32_t w() const { return w_; }

  // ------------------------------------------------------------- workload
  bool idle(std::uint32_t p) const {
    return procs_[p].phase == Phase::kIdle;
  }

  void begin_ll(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.phase == Phase::kIdle);
    pr.rec = OpRecord{};
    pr.rec.type = OpType::kLl;
    pr.rec.pid = p;
    pr.rec.start_version = x_.tag;
    pr.tmp.assign(w_, 0);
    pr.phase = Phase::kLlAnnounce;
  }

  void begin_sc(std::uint32_t p, std::vector<std::uint64_t> v) {
    Proc& pr = procs_[p];
    assert(pr.phase == Phase::kIdle && v.size() == w_);
    pr.rec = OpRecord{};
    pr.rec.type = OpType::kSc;
    pr.rec.pid = p;
    pr.rec.start_version = x_.tag;
    pr.rec.had_link = pr.link_valid;
    if (!pr.link_valid) {
      pr.phase = Phase::kScFailFast;  // O(1) semantic failure
      return;
    }
    pr.link_valid = false;  // the link is consumed either way
    pr.rec.value = v;       // ghost: what the oracle expects installed
    pr.scv = std::move(v);
    pr.idx = 0;
    pr.phase = Phase::kScCopyIn;
  }

  void begin_vl(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.phase == Phase::kIdle);
    pr.rec = OpRecord{};
    pr.rec.type = OpType::kVl;
    pr.rec.pid = p;
    pr.rec.start_version = x_.tag;
    pr.rec.had_link = pr.link_valid && pr.linked;
    pr.phase = Phase::kVl;
  }

  // ----------------------------------------------- crash-stop adversary
  /// Crash-stop: process p takes no further steps, frozen wherever it is —
  /// possibly mid-LL, mid-donation, or between announce and withdraw. A
  /// crashed process keeps every invariant exact by construction: its
  /// buffers stay in the census under their current owners, and if it
  /// froze between the X SC and the ring swap it stays counted in
  /// pending_bank_writes().
  void crash(std::uint32_t p) {
    assert(!procs_[p].crashed);
    procs_[p].crashed = true;
    ++crashes_;
  }

  bool crashed(std::uint32_t p) const { return procs_[p].crashed; }

  /// Recycles a crashed process's slot, settling every obligation the dead
  /// process left behind (mirrors core reclaim_pid + rebind_pid):
  ///  - an in-flight bank write (crashed between the X SC and the ring
  ///    swap) is completed on its behalf, so I2 stays an equality;
  ///  - a posted WAITING announce is withdrawn, so winners stop donating
  ///    into a slot nobody reads;
  ///  - an unconsumed donation is adopted (the donor took the dead
  ///    process's offered exchange buffer; the donated buffer is the
  ///    exchange side now), so the I1 census stays exact.
  /// The seq bump fences the slot against donations keyed to the dead
  /// incarnation. The pid is live again afterwards: its abandoned op is
  /// simply gone (the workload restarts the interrupted micro-op).
  void reclaim(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.crashed);
    // Complete the in-flight retirement first: the SC succeeded, so its
    // one bank write must still happen exactly once.
    if (pr.phase == Phase::kScSwapRead || pr.phase == Phase::kScSwapCas) {
      const std::uint64_t mytag = pr.link.tag + 1;
      RingCell& cell = ring_[ring_cell_of(mytag)];
      const std::uint64_t d = mytag - cell.tag;
      if (d >= ring_size_ && !(d >> 63)) {
        pr.spare = cell.buf;
        cell = RingCell{pr.retired, mytag};
      } else {
        pr.spare = pr.retired;  // lapped while dead; the retiree aged
      }
      ++bank_writes_;
    }
    // Settle the announce slot: withdraw a posted announce, adopt an
    // unconsumed donation.
    Slot& s = slot_[p];
    if (s.state == kHelped) pr.xbuf = s.buf;
    pr.seq += 1;
    s = Slot{kIdle, pr.xbuf, pr.seq, 0};
    pr.link_valid = false;
    pr.linked = false;
    pr.rec = OpRecord{};
    pr.phase = Phase::kIdle;
    pr.crashed = false;
    ++crash_reclaims_;
  }

  std::uint64_t crashes_total() const { return crashes_; }
  std::uint64_t crash_reclaims_total() const { return crash_reclaims_; }

  StepResult step(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.phase != Phase::kIdle);
    assert(!pr.crashed && "crashed processes take no steps");
    ++pr.rec.steps;
    switch (pr.phase) {
      case Phase::kLlAnnounce:
        pr.seq += 1;
        slot_[p] = Slot{kWaiting, pr.xbuf, pr.seq, 0};
        pr.phase = Phase::kLlReadX;
        return {};
      case Phase::kLlReadX:
        pr.link = x_;  // the engine-level LL on X
        pr.linked = true;
        pr.idx = 0;
        pr.phase = Phase::kLlCopy;
        return {};
      case Phase::kLlCopy:
        pr.tmp[pr.idx] = buf_row(pr.link.buf)[pr.idx];
        if (++pr.idx == w_) pr.phase = Phase::kLlValidate;
        return {};
      case Phase::kLlValidate:
        // Aged validation: the snapshot stands if the tag advanced at most
        // P — ring aging guarantees the linked buffer was not rewritten.
        pr.drift = x_.tag - pr.link.tag;
        pr.phase = (pr.drift <= p2_) ? Phase::kLlWithdraw : Phase::kLlCheckA;
        return {};
      case Phase::kLlWithdraw: {
        // CAS A[p]: WAITING -> IDLE. Failure means a donation raced in
        // after our validation; the fast-path value still stands (it
        // linearizes at the link), we just adopt the donated buffer as
        // our new exchange buffer — the donor took ours.
        Slot& s = slot_[p];
        if (s.state == kWaiting && s.seq == pr.seq) {
          s = Slot{kIdle, pr.xbuf, pr.seq, 0};
        } else {
          assert(s.state == kHelped && s.seq == pr.seq);
          pr.xbuf = s.buf;
          // Fold the slot retirement into the adopt: a stale HELPED word is
          // protocol-inert (probes want WAITING, marks CAS the exact word),
          // but the exchange-side ownership census reads the slot while it
          // is not IDLE, so it must mirror the adopted buffer from here on.
          s = Slot{kIdle, pr.xbuf, pr.seq, 0};
          pr.rec.helped = true;
        }
        pr.ll_buf = pr.link.buf;
        pr.link_valid = (pr.drift == 0);  // any drift already broke the link
        ++ll_fast_;
        pr.rec.success = true;
        pr.rec.value = pr.tmp;
        pr.rec.lin_version = pr.link.tag;
        return complete(pr);
      }
      case Phase::kLlCheckA: {
        // Drift >= P+1: the P winners that linked after our announce have
        // swept every slot pre-SC, so HELPED must already be posted.
        const Slot s = slot_[p];
        if (s.state == kHelped && s.seq == pr.seq) {
          pr.dbuf = s.buf;
          pr.ghost_lin = s.ghost_version;
          pr.idx = 0;
          pr.phase = Phase::kLlCopyDonated;
        } else {
          ++ll_retries_;  // defensive only; the checker flags this
          pr.phase = Phase::kLlReadX;
        }
        return {};
      }
      case Phase::kLlCopyDonated:
        // The donated buffer is privately owned now; no validation.
        pr.tmp[pr.idx] = buf_row(pr.dbuf)[pr.idx];
        if (++pr.idx < w_) return {};
        pr.xbuf = pr.dbuf;
        // Retire the HELPED word (see kLlWithdraw: census correctness).
        slot_[p] = Slot{kIdle, pr.xbuf, pr.seq, 0};
        pr.link_valid = false;  // a successful SC already intervened
        ++ll_helped_;
        pr.rec.success = true;
        pr.rec.helped = true;
        pr.rec.value = pr.tmp;
        pr.rec.lin_version = pr.ghost_lin;
        return complete(pr);
      case Phase::kScFailFast:
        pr.rec.success = false;
        pr.rec.link_version = kNoLink;
        pr.rec.version_at_sc = x_.tag;
        return complete(pr);
      case Phase::kScCopyIn:
        buf_row(pr.spare)[pr.idx] = pr.scv[pr.idx];
        if (++pr.idx == w_) pr.phase = Phase::kScProbe;
        return {};
      case Phase::kScProbe:
        // The winner of tag T+1 probes A[(T+1) mod P] — P consecutive
        // winners sweep every slot. Probing our own slot (we cannot be
        // WAITING) or a dummy index >= N skips the help arm.
        pr.target =
            static_cast<std::uint32_t>(pr.link.tag + 1) & (p2_ - 1);
        if (pr.target != p && pr.target < n_ &&
            slot_[pr.target].state == kWaiting) {
          pr.seen = slot_[pr.target];
          pr.idx = 0;
          pr.phase = Phase::kScHelpCopy;
        } else {
          pr.phase = Phase::kScX;
        }
        return {};
      case Phase::kScHelpCopy:
        // Pre-SC help: copy the linked current buffer into our exchange
        // buffer (scratch we own — we are not inside our own LL here).
        buf_row(pr.xbuf)[pr.idx] = buf_row(pr.link.buf)[pr.idx];
        if (++pr.idx == w_) pr.phase = Phase::kScHelpValidate;
        return {};
      case Phase::kScHelpValidate:
        // Strict re-validation: if X still matches our link, the copy is
        // an untorn snapshot of version link.tag, taken after the target
        // announced (we probed after linking... after the announce).
        pr.phase = (x_.tag == pr.link.tag) ? Phase::kScHelpMark : Phase::kScX;
        return {};
      case Phase::kScHelpMark: {
        // Ownership exchange: CAS A[target] from the exact WAITING word we
        // probed to HELPED(our copy), taking the offered buffer in return.
        // Ghost: the donated value is version link.tag's.
        Slot& s = slot_[pr.target];
        if (s.state == kWaiting && s.seq == pr.seen.seq &&
            s.buf == pr.seen.buf) {
          s = Slot{kHelped, pr.xbuf, s.seq, pr.link.tag};
          pr.xbuf = pr.seen.buf;
          ++helps_given_;
        }
        pr.phase = Phase::kScX;
        return {};
      }
      case Phase::kScX: {
        pr.rec.link_version = pr.link.tag;
        pr.rec.version_at_sc = x_.tag;
        const bool won = pr.linked && x_.tag == pr.link.tag;
        pr.linked = false;  // the engine link is consumed either way
        if (!won) {
          pr.rec.success = false;
          return complete(pr);
        }
        x_ = X{p, pr.spare, pr.link.tag + 1};
        ++sc_success_;
        // Retirement starts: the previously-current buffer is provisionally
        // our spare until the ring swap resolves (keeps I1 exact while the
        // bank write is in flight).
        pr.retired = pr.ll_buf;
        pr.spare = pr.retired;
        pr.rec.success = true;
        pr.phase = Phase::kScSwapRead;
        return {};
      }
      case Phase::kScSwapRead:
        pr.seen_ring = ring_[ring_cell_of(pr.link.tag + 1)];
        pr.phase = Phase::kScSwapCas;
        return {};
      case Phase::kScSwapCas: {
        // The bank write: swap our retiree into cell (T+1) mod R if the
        // cell is genuinely behind us; if we got lapped, our retiree has
        // already aged >= R tags and stays our spare.
        const std::uint64_t mytag = pr.link.tag + 1;
        RingCell& cell = ring_[ring_cell_of(mytag)];
        const std::uint64_t d = mytag - pr.seen_ring.tag;
        if (d >= ring_size_ && !(d >> 63)) {
          if (cell.buf == pr.seen_ring.buf && cell.tag == pr.seen_ring.tag) {
            pr.spare = cell.buf;
            cell = RingCell{pr.retired, mytag};
          } else {
            pr.phase = Phase::kScSwapRead;  // lost the CAS; re-read
            return {};
          }
        }
        ++bank_writes_;
        return complete(pr);
      }
      case Phase::kVl:
        pr.rec.success = pr.link_valid && pr.linked && x_.tag == pr.link.tag;
        pr.rec.link_version = pr.rec.had_link ? pr.link.tag : kNoLink;
        return complete(pr);
      case Phase::kIdle:
        break;
    }
    assert(false && "step on idle process");
    return {};
  }

  // ------------------------------------------------- scheduler / checker
  bool next_is_validate(std::uint32_t p) const {
    return procs_[p].phase == Phase::kLlValidate;
  }

  /// Phase probes for the crash-in-donation-window tests: the helper sits
  /// between its pre-SC donation copy/validation and the exchange CAS.
  bool next_is_help_mark(std::uint32_t p) const {
    return procs_[p].phase == Phase::kScHelpMark;
  }
  /// p's announce is posted (WAITING) — between announce and withdraw.
  bool announce_posted(std::uint32_t p) const {
    return slot_[p].state == kWaiting;
  }
  /// An unconsumed donation sits in p's slot.
  bool donation_posted(std::uint32_t p) const {
    return slot_[p].state == kHelped;
  }

  /// Version advances a doomed validation needs: the adversary must land
  /// P+1 successful SCs past the victim's link to defeat aged validation.
  std::uint64_t doom_delta() const { return p2_ + 1; }

  std::uint32_t steps_in_flight(std::uint32_t p) const {
    return idle(p) ? 0 : procs_[p].rec.steps;
  }

  std::uint64_t version() const { return x_.tag; }

  std::vector<std::uint64_t> current_value() const {
    const std::uint64_t* row = buf_row(x_.buf);
    return std::vector<std::uint64_t>(row, row + w_);
  }

  /// The paper's Theorem 1 bound, now the implemented one: announce (1) +
  /// link (1) + W-word copy + aged validate (1) + announce check (1) +
  /// donated W-word copy = 2W+4 steps worst case, comfortably within the
  /// claimed 4W+12 — independent of N.
  static std::uint32_t ll_step_bound(std::uint32_t /*n*/, std::uint32_t w) {
    return 4 * w + 12;
  }

  std::uint32_t num_bufs() const { return nbufs_; }
  std::uint32_t current_buf() const { return x_.buf; }
  std::uint32_t spare_of(std::uint32_t p) const { return procs_[p].spare; }

  /// The buffer process p owns through its exchange side: the slot's buffer
  /// while an announce/donation is posted, else the private xbuf (which the
  /// slot's stale IDLE word mirrors).
  std::uint32_t exchange_buf_of(std::uint32_t p) const {
    const Slot& s = slot_[p];
    return s.state == kIdle ? procs_[p].xbuf : s.buf;
  }

  std::uint32_t ring_size() const { return ring_size_; }
  std::uint32_t ring_buf(std::uint32_t j) const { return ring_[j].buf; }
  std::uint32_t probe_window() const { return p2_; }

  std::uint64_t bank_writes_total() const { return bank_writes_; }
  std::uint64_t sc_success_total() const { return sc_success_; }
  std::uint64_t helps_given_total() const { return helps_given_; }
  std::uint64_t ll_fast_total() const { return ll_fast_; }
  std::uint64_t ll_helped_total() const { return ll_helped_; }
  std::uint64_t ll_retries_total() const { return ll_retries_; }

  /// Successful SCs whose ring retirement has not resolved yet (their
  /// owner sits between the X step and the swap CAS).
  std::uint64_t pending_bank_writes() const {
    std::uint64_t pending = 0;
    for (const Proc& pr : procs_) {
      if (pr.phase == Phase::kScSwapRead || pr.phase == Phase::kScSwapCas) {
        ++pending;
      }
    }
    return pending;
  }

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kLlAnnounce,
    kLlReadX,
    kLlCopy,
    kLlValidate,
    kLlWithdraw,
    kLlCheckA,
    kLlCopyDonated,
    kScFailFast,
    kScCopyIn,
    kScProbe,
    kScHelpCopy,
    kScHelpValidate,
    kScHelpMark,
    kScX,
    kScSwapRead,
    kScSwapCas,
    kVl,
  };

  static constexpr std::uint8_t kIdle = 0;
  static constexpr std::uint8_t kWaiting = 1;
  static constexpr std::uint8_t kHelped = 2;
  static constexpr std::uint64_t kNoLink = ~std::uint64_t{0};

  static std::uint32_t next_pow2(std::uint32_t v) {
    std::uint32_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  std::uint32_t ring_cell_of(std::uint64_t tag) const {
    return static_cast<std::uint32_t>(tag) & (ring_size_ - 1);
  }

  /// The 1-word LL/SC variable X: descriptor <pid, buf> plus the sequence
  /// tag, which doubles as the abstract version.
  struct X {
    std::uint32_t pid = 0;
    std::uint32_t buf = 0;
    std::uint64_t tag = 0;
  };

  /// Announce slot plus ghost: the abstract version whose value a donated
  /// buffer holds (set by the donor, read only by the oracle).
  struct Slot {
    std::uint8_t state = kIdle;
    std::uint32_t buf = 0;
    std::uint64_t seq = 0;
    std::uint64_t ghost_version = 0;
  };

  struct RingCell {
    std::uint32_t buf = 0;
    std::uint64_t tag = 0;
  };

  struct Proc {
    Phase phase = Phase::kIdle;
    bool crashed = false;
    // Durable protocol state.
    std::uint32_t spare = 0;
    std::uint32_t xbuf = 0;
    std::uint32_t ll_buf = 0;
    std::uint64_t seq = 0;
    bool link_valid = false;
    bool linked = false;
    X link;
    // In-flight op state.
    OpRecord rec;
    std::uint32_t idx = 0;
    std::uint32_t target = 0;
    std::uint32_t dbuf = 0;
    std::uint32_t retired = 0;
    std::uint64_t drift = 0;
    std::uint64_t ghost_lin = 0;
    Slot seen;
    RingCell seen_ring;
    std::vector<std::uint64_t> tmp;
    std::vector<std::uint64_t> scv;
  };

  StepResult complete(Proc& pr) {
    pr.rec.end_version = x_.tag;
    pr.phase = Phase::kIdle;
    StepResult r;
    r.completed = true;
    r.rec = pr.rec;
    return r;
  }

  std::uint64_t* buf_row(std::uint32_t b) {
    return buf_.data() + static_cast<std::size_t>(b) * w_;
  }
  const std::uint64_t* buf_row(std::uint32_t b) const {
    return buf_.data() + static_cast<std::size_t>(b) * w_;
  }

  std::uint32_t n_;
  std::uint32_t w_;
  std::uint32_t p2_;        ///< N rounded up to a power of two (P)
  std::uint32_t ring_size_; ///< R = max(2, P), a power of two
  std::uint32_t nbufs_;
  X x_;
  std::vector<std::uint64_t> buf_;
  std::vector<Slot> slot_;
  std::vector<RingCell> ring_;
  std::vector<Proc> procs_;
  std::uint64_t sc_success_ = 0;
  std::uint64_t bank_writes_ = 0;
  std::uint64_t helps_given_ = 0;
  std::uint64_t ll_fast_ = 0;
  std::uint64_t ll_helped_ = 0;
  std::uint64_t ll_retries_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t crash_reclaims_ = 0;
};

}  // namespace mwllsc::sim
