// Step machine for the lock-free retry strawman (baseline/retry_llsc.hpp):
// no announce, no helping. SC is a 1-word SC on the descriptor; LL retries
// its W-word copy until a validation passes — so an adversarial scheduler
// can invalidate a reader forever, and steps_in_flight(victim) grows
// without bound under run_adversarial_anti. This machine is the unbounded
// contrast E9 measures jp/am against; it intentionally has no
// ll_step_bound.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/harness.hpp"

namespace mwllsc::sim {

class SimRetrySystem {
 public:
  SimRetrySystem(std::uint32_t nprocs, std::uint32_t words,
                 std::vector<std::uint64_t> init)
      : n_(nprocs),
        w_(words),
        nbufs_(nprocs + 1),
        buf_(static_cast<std::size_t>(nbufs_) * words, 0),
        procs_(nprocs) {
    assert(nprocs >= 1 && words >= 1 && init.size() == words);
    x_ = X{0, nprocs, 0};
    for (std::uint32_t i = 0; i < w_; ++i) buf_row(x_.buf)[i] = init[i];
    for (std::uint32_t p = 0; p < n_; ++p) procs_[p].spare = p;
  }

  std::uint32_t n() const { return n_; }
  std::uint32_t w() const { return w_; }

  // ------------------------------------------------------------- workload
  bool idle(std::uint32_t p) const {
    return procs_[p].phase == Phase::kIdle;
  }

  void begin_ll(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.phase == Phase::kIdle);
    pr.rec = OpRecord{};
    pr.rec.type = OpType::kLl;
    pr.rec.pid = p;
    pr.rec.start_version = x_.tag;
    pr.tmp.assign(w_, 0);
    pr.phase = Phase::kLlReadX;
  }

  void begin_sc(std::uint32_t p, std::vector<std::uint64_t> v) {
    Proc& pr = procs_[p];
    assert(pr.phase == Phase::kIdle && v.size() == w_);
    pr.rec = OpRecord{};
    pr.rec.type = OpType::kSc;
    pr.rec.pid = p;
    pr.rec.start_version = x_.tag;
    pr.rec.had_link = pr.link_valid;
    if (!pr.link_valid) {
      pr.phase = Phase::kScFailFast;
      return;
    }
    pr.link_valid = false;
    pr.rec.value = v;  // ghost: what the oracle expects installed
    pr.scv = std::move(v);
    pr.idx = 0;
    pr.phase = Phase::kScCopyIn;
  }

  void begin_vl(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.phase == Phase::kIdle);
    pr.rec = OpRecord{};
    pr.rec.type = OpType::kVl;
    pr.rec.pid = p;
    pr.rec.start_version = x_.tag;
    pr.rec.had_link = pr.link_valid && pr.linked;
    pr.phase = Phase::kVl;
  }

  StepResult step(std::uint32_t p) {
    Proc& pr = procs_[p];
    assert(pr.phase != Phase::kIdle);
    ++pr.rec.steps;
    switch (pr.phase) {
      case Phase::kLlReadX:
        pr.link = x_;
        pr.linked = true;
        pr.idx = 0;
        pr.phase = Phase::kLlCopy;
        return {};
      case Phase::kLlCopy:
        pr.tmp[pr.idx] = buf_row(pr.link.buf)[pr.idx];
        if (++pr.idx == w_) pr.phase = Phase::kLlValidate;
        return {};
      case Phase::kLlValidate:
        if (x_ == pr.link) {
          pr.ll_buf = pr.link.buf;
          pr.link_valid = true;
          pr.rec.success = true;
          pr.rec.value = pr.tmp;
          pr.rec.lin_version = pr.link.tag;
          return complete(pr);
        }
        pr.phase = Phase::kLlReadX;  // unbounded: lock-free, not wait-free
        return {};
      case Phase::kScFailFast:
        pr.rec.success = false;
        pr.rec.link_version = kNoLink;
        pr.rec.version_at_sc = x_.tag;
        return complete(pr);
      case Phase::kScCopyIn:
        buf_row(pr.spare)[pr.idx] = pr.scv[pr.idx];
        if (++pr.idx == w_) pr.phase = Phase::kScX;
        return {};
      case Phase::kScX: {
        pr.rec.link_version = pr.link.tag;
        pr.rec.version_at_sc = x_.tag;
        const bool won = pr.linked && x_ == pr.link;
        pr.linked = false;
        if (!won) {
          pr.rec.success = false;
          return complete(pr);
        }
        x_ = X{p, pr.spare, pr.link.tag + 1};
        ++sc_success_;
        pr.spare = pr.ll_buf;
        pr.rec.success = true;
        return complete(pr);
      }
      case Phase::kVl:
        pr.rec.success = pr.link_valid && pr.linked && x_ == pr.link;
        pr.rec.link_version = pr.rec.had_link ? pr.link.tag : kNoLink;
        return complete(pr);
      case Phase::kIdle:
        break;
    }
    assert(false && "step on idle process");
    return {};
  }

  // ------------------------------------------------- scheduler / checker
  bool next_is_validate(std::uint32_t p) const {
    return procs_[p].phase == Phase::kLlValidate;
  }

  /// Strict validation: a single successful SC dooms a pending validate.
  std::uint64_t doom_delta() const { return 1; }

  std::uint32_t steps_in_flight(std::uint32_t p) const {
    return idle(p) ? 0 : procs_[p].rec.steps;
  }

  std::uint64_t version() const { return x_.tag; }

  std::vector<std::uint64_t> current_value() const {
    const std::uint64_t* row = buf_row(x_.buf);
    return std::vector<std::uint64_t>(row, row + w_);
  }

  std::uint64_t sc_success_total() const { return sc_success_; }

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kLlReadX,
    kLlCopy,
    kLlValidate,
    kScFailFast,
    kScCopyIn,
    kScX,
    kVl,
  };

  static constexpr std::uint64_t kNoLink = ~std::uint64_t{0};

  struct X {
    std::uint32_t pid = 0;
    std::uint32_t buf = 0;
    std::uint64_t tag = 0;
    bool operator==(const X& o) const {
      return pid == o.pid && buf == o.buf && tag == o.tag;
    }
  };

  struct Proc {
    Phase phase = Phase::kIdle;
    std::uint32_t spare = 0;
    std::uint32_t ll_buf = 0;
    bool link_valid = false;
    bool linked = false;
    X link;
    OpRecord rec;
    std::uint32_t idx = 0;
    std::vector<std::uint64_t> tmp;
    std::vector<std::uint64_t> scv;
  };

  StepResult complete(Proc& pr) {
    pr.rec.end_version = x_.tag;
    pr.phase = Phase::kIdle;
    StepResult r;
    r.completed = true;
    r.rec = pr.rec;
    return r;
  }

  std::uint64_t* buf_row(std::uint32_t b) {
    return buf_.data() + static_cast<std::size_t>(b) * w_;
  }
  const std::uint64_t* buf_row(std::uint32_t b) const {
    return buf_.data() + static_cast<std::size_t>(b) * w_;
  }

  std::uint32_t n_;
  std::uint32_t w_;
  std::uint32_t nbufs_;
  X x_;
  std::vector<std::uint64_t> buf_;
  std::vector<Proc> procs_;
  std::uint64_t sc_success_ = 0;
};

}  // namespace mwllsc::sim
