// Reusable sense-reversing barrier for synchronized bench thread starts.
// Spins with yield so it behaves on machines with fewer cores than threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace mwllsc::util {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t parties) : parties_(parties) {}

  void arrive_and_wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const std::uint32_t parties_;
  // mwllsc-pad: exempt(start-line coordination only, never on a measured
  // path; the two words ping-pong together, so co-location is harmless)
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace mwllsc::util
