// Small fast PRNGs for the workload generators. SplitMix64 doubles as the
// seeder for Xoshiro256**, the generator the benches use for per-thread
// random streams.
#pragma once

#include <cstdint>

namespace mwllsc::util {

/// Sebastiano Vigna's SplitMix64: one 64-bit multiply-xorshift step per
/// draw, passes BigCrush, and any seed (including 0) is fine.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), seeded through SplitMix64 so that a
/// small integer seed still yields a well-mixed initial state.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform draw in [0, n) via Lemire's multiply-shift reduction.
  std::uint32_t next_below(std::uint32_t n) {
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(static_cast<std::uint32_t>(next())) *
         n) >>
        32);
  }

  /// True with probability num/den.
  bool chance(std::uint32_t num, std::uint32_t den) {
    return next_below(den) < num;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace mwllsc::util
