// Operation statistics, space accounting and the small numeric helpers the
// bench tables need. Counters live in per-process cache-line-padded cells so
// that keeping statistics never becomes the scalability bottleneck being
// measured.
#pragma once

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mwllsc::core {

/// One coherent sample of an implementation's per-operation counters.
/// The help-related fields follow the paper's LL pseudocode: a "helped" LL
/// found a donated buffer waiting in its announce slot (Line 4), a "rescue"
/// actually returned the donated value (Line 7), a "help install" is a
/// successful SC that performed the ownership exchange, and a "bank write"
/// is the buffer-retirement write every successful SC performs (Line 13 —
/// exactly one per successful SC, invariant I2).
struct OpStatsSnapshot {
  std::uint64_t ll_ops = 0;
  std::uint64_t sc_ops = 0;
  std::uint64_t sc_success = 0;
  std::uint64_t vl_ops = 0;
  std::uint64_t ll_helped = 0;
  std::uint64_t ll_used_helped_value = 0;
  std::uint64_t helps_given = 0;
  std::uint64_t bank_writes = 0;
  std::uint64_t ll_retries = 0;  ///< defensive LL retries; 0 if the 4W+12
                                 ///< help guarantee holds (tests assert it)

  OpStatsSnapshot& operator+=(const OpStatsSnapshot& o) {
    ll_ops += o.ll_ops;
    sc_ops += o.sc_ops;
    sc_success += o.sc_success;
    vl_ops += o.vl_ops;
    ll_helped += o.ll_helped;
    ll_used_helped_value += o.ll_used_helped_value;
    helps_given += o.helps_given;
    bank_writes += o.bank_writes;
    ll_retries += o.ll_retries;
    return *this;
  }
};

}  // namespace mwllsc::core

namespace mwllsc::util {

/// Per-process counter cell. Each process id is driven by one thread, so
/// relaxed increments are race-free; padding keeps cells on distinct lines.
struct alignas(64) OpStatsCell {
  std::atomic<std::uint64_t> ll_ops{0};
  std::atomic<std::uint64_t> sc_ops{0};
  std::atomic<std::uint64_t> sc_success{0};
  std::atomic<std::uint64_t> vl_ops{0};
  std::atomic<std::uint64_t> ll_helped{0};
  std::atomic<std::uint64_t> ll_used_helped_value{0};
  std::atomic<std::uint64_t> helps_given{0};
  std::atomic<std::uint64_t> bank_writes{0};
  std::atomic<std::uint64_t> ll_retries{0};

  void bump(std::atomic<std::uint64_t>& c) {
    c.fetch_add(1, std::memory_order_relaxed);
  }
};

class OpStatsArray {
 public:
  explicit OpStatsArray(std::uint32_t nprocs)
      : cells_(new OpStatsCell[nprocs]), n_(nprocs) {}

  OpStatsCell& at(std::uint32_t p) { return cells_[p]; }

  core::OpStatsSnapshot snapshot() const {
    core::OpStatsSnapshot s;
    for (std::uint32_t p = 0; p < n_; ++p) {
      const OpStatsCell& c = cells_[p];
      s.ll_ops += c.ll_ops.load(std::memory_order_relaxed);
      s.sc_ops += c.sc_ops.load(std::memory_order_relaxed);
      s.sc_success += c.sc_success.load(std::memory_order_relaxed);
      s.vl_ops += c.vl_ops.load(std::memory_order_relaxed);
      s.ll_helped += c.ll_helped.load(std::memory_order_relaxed);
      s.ll_used_helped_value +=
          c.ll_used_helped_value.load(std::memory_order_relaxed);
      s.helps_given += c.helps_given.load(std::memory_order_relaxed);
      s.bank_writes += c.bank_writes.load(std::memory_order_relaxed);
      s.ll_retries += c.ll_retries.load(std::memory_order_relaxed);
    }
    return s;
  }

  std::size_t bytes() const { return n_ * sizeof(OpStatsCell); }

 private:
  std::unique_ptr<OpStatsCell[]> cells_;
  std::uint32_t n_;
};

/// Named space breakdown of an implementation. Every part carries a
/// structured ownership tag — shared memory vs private per-process state —
/// so the space experiments filter on the tag, mirroring the paper's
/// accounting (shared words only), instead of string-matching part names.
class Footprint {
 public:
  enum class Ownership { kShared, kPerProcess };

  struct Part {
    std::string name;
    std::size_t bytes;
    Ownership ownership;
  };

  void add(std::string name, std::size_t bytes,
           Ownership ownership = Ownership::kShared) {
    parts_.push_back({std::move(name), bytes, ownership});
  }

  const std::vector<Part>& parts() const { return parts_; }

  std::size_t total_bytes() const {
    std::size_t t = 0;
    for (const auto& p : parts_) t += p.bytes;
    return t;
  }

  /// Bytes of shared memory — the quantity Theorem 1 bounds.
  std::size_t shared_bytes() const {
    std::size_t t = 0;
    for (const auto& p : parts_) {
      if (p.ownership == Ownership::kShared) t += p.bytes;
    }
    return t;
  }

 private:
  std::vector<Part> parts_;
};

/// Log2-bucketed latency histogram (nanoseconds). Accurate enough for the
/// p50/p99 columns of the stall-adversary table while costing O(1) per
/// record and O(64) space.
class LatencyHistogram {
 public:
  void record(std::uint64_t ns) {
    ++buckets_[bucket_of(ns)];
    ++count_;
    if (ns > max_) max_ = ns;
  }

  void merge(const LatencyHistogram& o) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    if (o.max_ > max_) max_ = o.max_;
  }

  /// The q-quantile (0 <= q <= 1), interpolated linearly inside the bucket
  /// holding the rank — the bucket lower bound alone understates p99 by up
  /// to 2x at the log2 bucket width. Clamped to the observed max.
  std::uint64_t percentile(double q) const {
    if (count_ == 0) return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      if (seen + buckets_[i] > rank) {
        const std::uint64_t lo = lower_bound_of(i);
        const std::uint64_t hi = i + 1 < kBuckets ? lower_bound_of(i + 1)
                                                  : max_;
        // Samples assumed uniform inside the bucket: place the rank-th at
        // the (pos + 0.5)/n fraction of [lo, hi).
        const double frac = (static_cast<double>(rank - seen) + 0.5) /
                            static_cast<double>(buckets_[i]);
        const std::uint64_t v =
            lo + static_cast<std::uint64_t>(
                     frac * static_cast<double>(hi > lo ? hi - lo : 0));
        return v > max_ ? max_ : v;
      }
      seen += buckets_[i];
    }
    return max_;
  }

  std::uint64_t max() const { return max_; }
  std::uint64_t count() const { return count_; }

 private:
  static constexpr std::size_t kBuckets = 64;

  static std::size_t bucket_of(std::uint64_t ns) {
    if (ns == 0) return 0;
    return static_cast<std::size_t>(64 - __builtin_clzll(ns)) - 1;
  }

  static std::uint64_t lower_bound_of(std::size_t b) {
    return b == 0 ? 0 : (1ULL << b);
  }

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
};

/// Least-squares slope of log(y) against log(x): the fitted exponent k in
/// y ~ x^k. Used by the space tables to check the O(NW) vs O(N^2 W) claims.
inline double fitted_exponent(const std::vector<double>& xs,
                              const std::vector<double>& ys) {
  const std::size_t n = xs.size() < ys.size() ? xs.size() : ys.size();
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0) return 0.0;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace mwllsc::util
