// Minimal aligned-column table printer for the bench executables' stdout
// reports.
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

namespace mwllsc::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    print_row(headers_, widths);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c], '-');
      if (c + 1 < widths.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row, widths);
  }

  static std::string num(std::size_t v) { return std::to_string(v); }

  static std::string num(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
  }

 private:
  static void print_row(const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : kEmpty;
      line += std::string(widths[c] - cell.size(), ' ') + cell;
      if (c + 1 < widths.size()) line += " | ";
    }
    std::printf("%s\n", line.c_str());
  }

  inline static const std::string kEmpty;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mwllsc::util
