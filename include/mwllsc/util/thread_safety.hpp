// Clang thread-safety analysis shim. The annotated Mutex/MutexLock pair
// below lets the blocking baseline say which fields its lock guards
// (MWLLSC_GUARDED_BY), and clang's -Wthread-safety (enabled on the
// mwllsc_warnings target whenever the compiler is clang) then proves the
// lock discipline at compile time. On GCC every macro expands to nothing
// and Mutex degenerates to a plain std::mutex wrapper, so builds stay
// byte-for-byte identical in behavior.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MWLLSC_TSA(x) __attribute__((x))
#endif
#endif
#ifndef MWLLSC_TSA
#define MWLLSC_TSA(x)  // no-op outside clang
#endif

#define MWLLSC_CAPABILITY(name) MWLLSC_TSA(capability(name))
#define MWLLSC_SCOPED_CAPABILITY MWLLSC_TSA(scoped_lockable)
#define MWLLSC_GUARDED_BY(m) MWLLSC_TSA(guarded_by(m))
#define MWLLSC_PT_GUARDED_BY(m) MWLLSC_TSA(pt_guarded_by(m))
#define MWLLSC_ACQUIRE(...) MWLLSC_TSA(acquire_capability(__VA_ARGS__))
#define MWLLSC_RELEASE(...) MWLLSC_TSA(release_capability(__VA_ARGS__))
#define MWLLSC_REQUIRES(...) MWLLSC_TSA(requires_capability(__VA_ARGS__))
#define MWLLSC_EXCLUDES(...) MWLLSC_TSA(locks_excluded(__VA_ARGS__))
#define MWLLSC_NO_TSA MWLLSC_TSA(no_thread_safety_analysis)

namespace mwllsc::util {

/// std::mutex carrying the capability attribute, so fields can be
/// declared MWLLSC_GUARDED_BY(mu_) and misuses fail the clang build.
class MWLLSC_CAPABILITY("mutex") Mutex {
 public:
  void lock() MWLLSC_ACQUIRE() { mu_.lock(); }
  void unlock() MWLLSC_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex, visible to the thread-safety analysis (a raw
/// std::lock_guard would not release the capability in the analyzer's
/// eyes).
class MWLLSC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) MWLLSC_ACQUIRE(m) : mu_(m) { mu_.lock(); }
  ~MutexLock() MWLLSC_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace mwllsc::util
