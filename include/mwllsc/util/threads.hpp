// Timed multi-thread workload driver. All workers start together behind a
// barrier, run until the driver raises the stop flag, and are joined before
// run_for returns — so every measurement window has a clean start and end.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/barrier.hpp"
#include "util/timing.hpp"

namespace mwllsc::util {

class TimedRun {
 public:
  /// Runs `fn(tid)` on `threads` threads for ~`duration_ns`. `fn` must poll
  /// should_stop() in its loop. Reusable: each call resets the flag.
  void run_for(unsigned threads, std::uint64_t duration_ns,
               const std::function<void(unsigned)>& fn) {
    stop_.store(false, std::memory_order_relaxed);
    SpinBarrier start(threads + 1);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        start.arrive_and_wait();
        fn(t);
      });
    }
    start.arrive_and_wait();
    const std::uint64_t t0 = now_ns();
    std::this_thread::sleep_for(std::chrono::nanoseconds(duration_ns));
    stop_.store(true, std::memory_order_relaxed);
    for (auto& th : pool) th.join();
    // Workers keep counting until they observe the flag, and sleep_for can
    // oversleep on loaded machines: rates must divide by the window the
    // work actually spanned, not the nominal duration.
    measured_ns_ = now_ns() - t0;
  }

  bool should_stop() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Wall time from synchronized start until all workers joined.
  std::uint64_t measured_ns() const { return measured_ns_; }

 private:
  // mwllsc-pad: exempt(single cold flag, written once at the deadline and
  // polled read-only by workers; nothing hot shares its line)
  std::atomic<bool> stop_{false};
  std::uint64_t measured_ns_ = 0;
};

}  // namespace mwllsc::util
