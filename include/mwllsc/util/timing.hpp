// Monotonic clock helpers used by the timed workloads and the latency
// measurements.
#pragma once

#include <chrono>
#include <cstdint>

namespace mwllsc::util {

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}

  void reset() { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) / 1e9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace mwllsc::util
