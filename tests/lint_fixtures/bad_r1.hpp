// lint-expect: R1 (defaulted seq_cst on the fetch_add)
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct alignas(64) Counter {
  std::atomic<std::uint64_t> n{0};

  void bump() { n.fetch_add(1); }

  std::uint64_t read() const { return n.load(std::memory_order_relaxed); }
};

}  // namespace fixture
