// lint-expect: R2 (explicit seq_cst store with no ordering contract)
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct alignas(64) Flag {
  std::atomic<std::uint64_t> word{0};

  void publish(std::uint64_t v) {
    word.store(v, std::memory_order_seq_cst);
  }
};

}  // namespace fixture
