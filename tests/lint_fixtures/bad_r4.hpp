// lint-expect: R4 (volatile smuggles an un-modeled shared access)
#pragma once

#include <cstdint>

namespace fixture {

struct Box {
  volatile std::uint64_t raw = 0;
};

}  // namespace fixture
