// lint-expect: R5 (shared atomic field with no padding and no exemption)
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct Shared {
  std::atomic<std::uint64_t> hot{0};

  void set(std::uint64_t v) { hot.store(v, std::memory_order_relaxed); }
};

}  // namespace fixture
