// lint-expect: R5 (membership-style slot whose shared word is not padded:
// adjacent slots in the array false-share a cache line, so claim CASes on
// one slot slow every neighbor's heartbeat and scan traffic)
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct Slot {
  std::atomic<std::uint64_t> word{0};  // state(2) | generation(62)

  bool claim(std::uint64_t gen) {
    std::uint64_t expect = gen << 2;
    return word.compare_exchange_strong(expect, ((gen + 1) << 2) | 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed);
  }
};

}  // namespace fixture
