// lint-expect: R3 (release store on a single-writer ring head)
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct alignas(64) Ring {
  std::atomic<std::uint64_t> head{0};

  void advance(std::uint64_t h) {
    head.store(h, std::memory_order_release);
  }
};

}  // namespace fixture
