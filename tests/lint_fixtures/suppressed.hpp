// lint-expect: nothing (the R1 below is suppressed; suppressed count 1)
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct alignas(64) Legacy {
  std::atomic<std::uint64_t> n{0};

  void bump() {
    // mwllsc-lint-suppress(R1: fixture for the suppression mechanism)
    n.fetch_add(1);
  }
};

}  // namespace fixture
