// The apps/ layer as a correctness gate, on every substrate (jp / am /
// retry / lock):
//   * WfUniversal fetch&inc under N-thread stress linearizes against the
//     sequential spec — the returned values are exactly a permutation of
//     0..N*K-1 and the final state is N*K;
//   * the help-all attempt bound holds: no apply ever took more than
//     WfUniversal::kMaxAttempts LL/SC rounds;
//   * UniversalObject (lock-free retry) loses no increments;
//   * WfQueue sequential spec (FIFO, full, empty sentinel) and an MT
//     producer/consumer checksum: every enqueued value is dequeued exactly
//     once.
// Run it under ASan/UBSan/TSan via -DMWLLSC_SANITIZE=... — the announce /
// help-all protocol is exactly the kind of code sanitizers exist for.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "apps/universal.hpp"
#include "apps/wf_queue.hpp"
#include "apps/wf_universal.hpp"
#include "bench_common.hpp"
#include "test_check.hpp"

using namespace mwllsc;

namespace {

struct Counter {
  std::uint64_t v;
};
struct FetchInc {
  std::uint64_t operator()(Counter& c, const apps::OpDesc&) const {
    return c.v++;
  }
};

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kOpsPerThread = 2000;

using WfCounter = apps::WfUniversal<Counter, FetchInc>;

void wf_counter_for(const core::MwLLSCFactory& f) {
  WfCounter obj(kThreads, Counter{0}, f.make);
  std::vector<std::vector<std::uint64_t>> results(kThreads);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      results[t].reserve(kOpsPerThread);
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i)
        results[t].push_back(obj.apply(t, apps::OpDesc{}));
    });
  }
  for (auto& th : pool) th.join();

  // Sequential spec of fetch&inc: the N*K results, merged, are exactly
  // 0..N*K-1 — each value handed out once. Any lost update, double apply
  // or torn help would break the permutation.
  std::vector<std::uint64_t> all;
  for (auto& r : results) all.insert(all.end(), r.begin(), r.end());
  std::sort(all.begin(), all.end());
  CHECK_EQ(all.size(), static_cast<std::size_t>(kThreads) * kOpsPerThread);
  for (std::size_t i = 0; i < all.size(); ++i) CHECK_EQ(all[i], i);
  CHECK_EQ(obj.read(0).v, kThreads * kOpsPerThread);

  // The wait-free bound: no apply needed more than kMaxAttempts rounds,
  // and the aggregate confirms at least one round per apply.
  const std::uint64_t ops = kThreads * kOpsPerThread;
  CHECK(obj.max_attempts() >= 1);
  CHECK(obj.max_attempts() <= WfCounter::kMaxAttempts);
  CHECK(obj.total_attempts() >= ops);
  CHECK(obj.total_attempts() <= ops * WfCounter::kMaxAttempts);
  std::printf("  wf universal   %-5s  attempts/op = %.3f, max = %llu\n",
              f.name.c_str(),
              static_cast<double>(obj.total_attempts()) /
                  static_cast<double>(ops),
              static_cast<unsigned long long>(obj.max_attempts()));
}

void lf_counter_for(const core::MwLLSCFactory& f) {
  apps::UniversalObject<Counter> obj(kThreads, Counter{0}, f.make);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i)
        obj.apply(t, [](Counter& c) { c.v++; });
    });
  }
  for (auto& th : pool) th.join();
  CHECK_EQ(obj.read(0).v, kThreads * kOpsPerThread);
  // Exactly one committed SC per apply, so attempts >= applies; the `read`
  // calls above do not count.
  CHECK(obj.attempts_hint() >= kThreads * kOpsPerThread);
  std::printf("  lf universal   %-5s  attempts/op = %.3f\n", f.name.c_str(),
              static_cast<double>(obj.attempts_hint()) /
                  static_cast<double>(kThreads * kOpsPerThread));
}

// Deterministic help-all exercise via the step hook (the MT stress above
// relies on the OS preempting inside an LL..SC window, which a single-core
// machine may never do): park p0 at an exact protocol point and reentrantly
// drive p1's apply from the hook, exactly like test_help_path does for the
// core protocol.
struct DetHook {
  WfCounter* obj;
  const char* stall_point;
  bool fired = false;
  std::uint64_t p1_result = 0;
};

void det_interfere(void* ctx, const char* point, std::uint32_t pid) {
  auto* st = static_cast<DetHook*>(ctx);
  if (st->fired || pid != 0) return;
  if (std::strcmp(point, st->stall_point) != 0) return;
  st->fired = true;  // p1's own hook points must not recurse
  st->p1_result = st->obj->apply(1, apps::OpDesc{});
}

void deterministic_help_paths() {
  // Helped before the first LL: p1's committed SC applies p0's announced
  // op, so p0 returns straight from its snapshot — no SC at all. Help
  // order (pid-ascending) gives p0 the earlier fetch&inc value.
  {
    WfCounter obj(2, Counter{0});
    DetHook st{&obj, "announced", false, 0};
    obj.set_step_hook(&det_interfere, &st);
    const std::uint64_t r0 = obj.apply(0, apps::OpDesc{});
    obj.set_step_hook(nullptr, nullptr);
    CHECK(st.fired);
    CHECK_EQ(r0, 0u);
    CHECK_EQ(st.p1_result, 1u);
    CHECK_EQ(obj.read(0).v, 2u);
    CHECK_EQ(obj.max_attempts(), 1u);  // p0 never reached an SC
  }
  // Failed SC, then helped: p0 has linked when p1 commits (helping p0 in
  // the same SC). p0's SC fails semantically; its second LL finds the op
  // applied and returns the result from that snapshot.
  {
    WfCounter obj(2, Counter{0});
    DetHook st{&obj, "linked", false, 0};
    obj.set_step_hook(&det_interfere, &st);
    const std::uint64_t r0 = obj.apply(0, apps::OpDesc{});
    obj.set_step_hook(nullptr, nullptr);
    CHECK(st.fired);
    CHECK_EQ(r0, 0u);
    CHECK_EQ(st.p1_result, 1u);
    CHECK_EQ(obj.read(0).v, 2u);
    CHECK_EQ(obj.max_attempts(), 2u);  // one failed SC + the helped exit
  }
  std::printf("  deterministic help paths  OK\n");
}

void queue_sequential_spec() {
  apps::WfQueue<4> q(1);
  CHECK_EQ(q.dequeue(0), apps::kQueueEmpty);  // empty from the start
  CHECK(!q.enqueue(0, apps::kQueueEmpty));    // sentinel rejected
  for (std::uint64_t v = 1; v <= 4; ++v) CHECK(q.enqueue(0, v * 10));
  CHECK(!q.enqueue(0, 50));  // full at capacity
  CHECK_EQ(q.size(0), 4u);
  for (std::uint64_t v = 1; v <= 4; ++v) CHECK_EQ(q.dequeue(0), v * 10);  // FIFO
  CHECK_EQ(q.dequeue(0), apps::kQueueEmpty);
  // Wraps around the ring.
  CHECK(q.enqueue(0, 7));
  CHECK_EQ(q.dequeue(0), 7u);
}

void queue_mt_for(const core::MwLLSCFactory& f) {
  constexpr unsigned kProducers = 2;
  constexpr unsigned kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 1500;
  apps::WfQueue<16> q(kProducers + kConsumers, f.make);
  std::atomic<std::uint64_t> dequeued{0};
  std::vector<std::vector<std::uint64_t>> got(kConsumers);
  std::vector<std::thread> pool;
  for (unsigned p = 0; p < kProducers; ++p) {
    pool.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = p * kPerProducer + i + 1;  // distinct, nonzero
        while (!q.enqueue(p, v)) {
        }  // full: retry
      }
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    pool.emplace_back([&, c] {
      const std::uint32_t pid = kProducers + c;
      got[c].reserve(kPerProducer);
      while (dequeued.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        const std::uint64_t v = q.dequeue(pid);
        if (v == apps::kQueueEmpty) continue;
        got[c].push_back(v);
        dequeued.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : pool) th.join();

  // Checksum: everything enqueued came out exactly once, nothing else.
  std::vector<std::uint64_t> all;
  for (auto& g : got) all.insert(all.end(), g.begin(), g.end());
  std::sort(all.begin(), all.end());
  CHECK_EQ(all.size(),
           static_cast<std::size_t>(kProducers) * kPerProducer);
  for (std::size_t i = 0; i < all.size(); ++i) CHECK_EQ(all[i], i + 1);
  CHECK_EQ(q.size(0), 0u);
  CHECK(q.max_attempts() <= 3);
  std::printf("  wf queue       %-5s  OK\n", f.name.c_str());
}

}  // namespace

int main() {
  std::printf("test_apps:\n");
  deterministic_help_paths();
  queue_sequential_spec();
  for (const auto& f : bench::all_factories()) {
    wf_counter_for(f);
    lf_counter_for(f);
    queue_mt_for(f);
  }
  std::printf("test_apps: OK\n");
  return 0;
}
