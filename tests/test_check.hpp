// Tiny check harness for the ctest executables: CHECK aborts with location
// and message on failure, and main-less tests just return from run_tests.
#pragma once

#include <cstdio>
#include <cstdlib>

#define CHECK(cond)                                                      \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define CHECK_EQ(a, b)                                                   \
  do {                                                                   \
    const auto va_ = (a);                                                \
    const auto vb_ = (b);                                                \
    if (!(va_ == vb_)) {                                                 \
      std::fprintf(stderr,                                               \
                   "CHECK_EQ failed at %s:%d: %s == %s "                 \
                   "(%llu vs %llu)\n",                                   \
                   __FILE__, __LINE__, #a, #b,                           \
                   static_cast<unsigned long long>(va_),                 \
                   static_cast<unsigned long long>(vb_));                \
      std::abort();                                                      \
    }                                                                    \
  } while (0)
