// Facade-level LL/SC/VL semantics, run identically against all four
// implementations: single-thread round-trips, semantic SC failure after an
// intervening SC, VL behavior, full-width multiword values, and counter
// sanity.
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "test_check.hpp"

using namespace mwllsc;

namespace {

void semantics_for(const core::MwLLSCFactory& f) {
  std::printf("  %s\n", f.name.c_str());
  constexpr std::uint32_t kW = 6;
  auto obj = f.make(3, kW);
  CHECK_EQ(obj->words(), kW);

  std::vector<std::uint64_t> a(kW), b(kW), c(kW);

  // Fresh object reads all zeros.
  obj->ll(0, a.data());
  for (auto v : a) CHECK_EQ(v, 0u);

  // VL holds until an SC intervenes, and is repeatable.
  CHECK(obj->vl(0));
  CHECK(obj->vl(0));

  // Round trip of a distinct pattern across every word.
  for (std::uint32_t i = 0; i < kW; ++i) a[i] = 0x1111111111111111ULL * (i + 1);
  CHECK(obj->sc(0, a.data()));
  obj->ll(1, b.data());
  CHECK(b == a);

  // The link is consumed by SC: VL false, second SC fails.
  CHECK(!obj->vl(0));
  CHECK(!obj->sc(0, a.data()));

  // SC fails after an intervening successful SC.
  obj->ll(0, b.data());
  obj->ll(2, c.data());
  c[0] = 777;
  CHECK(obj->sc(2, c.data()));
  CHECK(!obj->vl(0));
  b[0] = 888;
  CHECK(!obj->sc(0, b.data()));
  obj->ll(0, b.data());
  CHECK(b == c);

  // SC/VL with no LL at all fail.
  auto fresh = f.make(2, 2);
  std::uint64_t two[2] = {1, 2};
  CHECK(!fresh->sc(0, two));
  CHECK(!fresh->vl(0));

  // A failed SC still leaves the object intact and re-LL-able.
  obj->ll(0, b.data());
  CHECK(b == c);
  CHECK(obj->vl(0));
  b[kW - 1] = 4242;
  CHECK(obj->sc(0, b.data()));
  obj->ll(1, a.data());
  CHECK(a == b);

  // Counter sanity: sc_success <= sc_ops <= ll-ish totals, all populated.
  const auto s = obj->stats();
  CHECK(s.ll_ops >= 5);
  CHECK(s.sc_ops >= 5);
  CHECK(s.sc_success >= 3);
  CHECK(s.sc_success <= s.sc_ops);
  CHECK(s.vl_ops >= 4);

  // Footprint: parts sum to the total, the shared/per-process ownership
  // split is structural (no name matching), and private state is reported.
  const auto fp = obj->footprint();
  std::size_t sum = 0;
  std::size_t private_bytes = 0;
  for (const auto& part : fp.parts()) {
    sum += part.bytes;
    if (part.ownership == util::Footprint::Ownership::kPerProcess) {
      private_bytes += part.bytes;
    }
  }
  CHECK_EQ(sum, fp.total_bytes());
  CHECK_EQ(fp.shared_bytes() + private_bytes, fp.total_bytes());
  CHECK(private_bytes > 0);
  CHECK(fp.shared_bytes() > 0);
}

// W = 1 degenerate geometry and N = 1 solo process must also work.
void degenerate_for(const core::MwLLSCFactory& f) {
  auto solo = f.make(1, 1);
  std::uint64_t v = 0;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    solo->ll(0, &v);
    CHECK_EQ(v, i - 1);
    v = i;
    CHECK(solo->sc(0, &v));
  }
  solo->ll(0, &v);
  CHECK_EQ(v, 100u);
}

}  // namespace

int main() {
  std::printf("test_core_semantics:\n");
  for (const auto& f : bench::all_factories()) {
    semantics_for(f);
    degenerate_for(f);
  }
  std::printf("test_core_semantics: OK\n");
  return 0;
}
