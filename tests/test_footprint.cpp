// Space-complexity shape checks (Theorem 1 / experiment E1): the paper's
// algorithm is O(NW) shared words while the Anderson–Moir-style baseline is
// O(N^2 W), so doubling N should roughly double jp and roughly quadruple
// am. Fitted log-log exponents make the asymptotics explicit.
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "test_check.hpp"

using namespace mwllsc;

namespace {

std::size_t shared_bytes(core::IMwLLSC& obj) {
  return obj.footprint().shared_bytes();
}

}  // namespace

int main() {
  const std::uint32_t w = 16;
  const std::vector<std::uint32_t> ns = {4, 8, 16, 32, 64};
  std::vector<double> xs, jp, am, retry;
  for (std::uint32_t n : ns) {
    auto j = bench::factory_by_name("jp").make(n, w);
    auto a = bench::factory_by_name("am").make(n, w);
    auto r = bench::factory_by_name("retry").make(n, w);
    xs.push_back(n);
    jp.push_back(static_cast<double>(shared_bytes(*j)));
    am.push_back(static_cast<double>(shared_bytes(*a)));
    retry.push_back(static_cast<double>(shared_bytes(*r)));
  }

  const double jp_exp = util::fitted_exponent(xs, jp);
  const double am_exp = util::fitted_exponent(xs, am);
  const double rt_exp = util::fitted_exponent(xs, retry);
  std::printf("test_footprint: fitted exponents jp=N^%.2f am=N^%.2f "
              "retry=N^%.2f\n", jp_exp, am_exp, rt_exp);

  // jp and retry are linear in N, am quadratic (generous brackets).
  CHECK(jp_exp > 0.7 && jp_exp < 1.3);
  CHECK(rt_exp > 0.7 && rt_exp < 1.3);
  CHECK(am_exp > 1.6 && am_exp < 2.4);

  // At equal geometry am pays a factor ~Theta(N) more shared space than
  // jp. The divisor absorbs jp's constant (2N+R+1 line-padded buffers plus
  // the ring); the fitted exponents above carry the asymptotic claim.
  const double ratio = am.back() / jp.back();
  CHECK(ratio > static_cast<double>(ns.back()) / 8);

  // Growing W grows jp linearly too (O(NW)).
  auto j16 = bench::factory_by_name("jp").make(16, 16);
  auto j64 = bench::factory_by_name("jp").make(16, 64);
  const double wratio = static_cast<double>(shared_bytes(*j64)) /
                        static_cast<double>(shared_bytes(*j16));
  CHECK(wratio > 2.5 && wratio < 4.5);

  // Buffer rows are padded to cache-line multiples (the false-sharing
  // fix), and footprint() reports the real padded size: any W within the
  // same 8-word stride costs the same, and crossing the stride grows it.
  auto j5 = bench::factory_by_name("jp").make(8, 5);
  auto j8 = bench::factory_by_name("jp").make(8, 8);
  auto j9 = bench::factory_by_name("jp").make(8, 9);
  CHECK_EQ(shared_bytes(*j5), shared_bytes(*j8));
  CHECK(shared_bytes(*j9) > shared_bytes(*j8));

  std::printf("test_footprint: OK\n");
  return 0;
}
