// Deterministic exercise of the helping machinery, via the step hook: a
// reader announces and reads X, then — before its copy can validate — the
// hook drives another process through successful SCs until the help
// schedule's round-robin probe lands on the reader's announce slot. The
// reader's LL must then return the donated snapshot (the value current the
// instant before the donating SC), with the helped/rescue/help-install
// counters each firing exactly once, and the object must stay fully
// functional afterwards (the ownership exchange preserved the buffer
// accounting).
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/mwllsc.hpp"
#include "test_check.hpp"

using namespace mwllsc;

namespace {

constexpr std::uint32_t kW = 4;

template <class Engine>
struct HookState {
  core::MwLLSC<Engine>* obj = nullptr;
  bool fired = false;
  std::vector<std::uint64_t> before_donating_sc;  // value the rescue returns
};

template <class Engine>
void interfere(void* ctx, const char* point, std::uint32_t pid) {
  auto* st = static_cast<HookState<Engine>*>(ctx);
  if (st->fired || pid != 0) return;
  if (std::strcmp(point, "ll:read_x") != 0) return;
  st->fired = true;  // no reentrant interference from pid 1's own ops
  // With N = 2 the winner of tag T+1 probes slot (T+1) mod 2, so two
  // successful SCs by pid 1 are guaranteed to sweep slot 0. The donated
  // buffer is the one retired by the *last* successful SC before the probe
  // hit, i.e. it carries the value installed by the previous SC.
  std::vector<std::uint64_t> v(kW);
  for (std::uint64_t round = 1; round <= 2; ++round) {
    st->obj->ll(1, v.data());
    st->before_donating_sc = v;
    for (std::uint32_t i = 0; i < kW; ++i) v[i] = 100 * round + i;
    CHECK(st->obj->sc(1, v.data()));
    if (st->obj->stats().helps_given > 0) return;
  }
  CHECK(st->obj->stats().helps_given > 0);
}

template <class Engine>
void help_path_for() {
  core::MwLLSC<Engine> obj(2, kW);
  HookState<Engine> st;
  st.obj = &obj;
  obj.set_step_hook(&interfere<Engine>, &st);

  std::vector<std::uint64_t> out(kW);
  obj.ll(0, out.data());
  obj.set_step_hook(nullptr, nullptr);

  CHECK(st.fired);
  const auto s = obj.stats();
  CHECK_EQ(s.helps_given, 1u);
  CHECK_EQ(s.ll_helped, 1u);
  CHECK_EQ(s.ll_used_helped_value, 1u);
  CHECK(s.bank_writes >= 1);

  // The rescue returned the value that was current just before the
  // donating SC — exactly what pid 1 read at the LL preceding it.
  CHECK(out == st.before_donating_sc);

  // A helped LL's link is already broken: an SC succeeded meanwhile.
  CHECK(!obj.vl(0));
  CHECK(!obj.sc(0, out.data()));

  // The ownership exchange must leave the buffer pool consistent: both
  // processes can keep operating and observe each other's updates.
  std::vector<std::uint64_t> v(kW);
  for (std::uint64_t i = 1; i <= 200; ++i) {
    const std::uint32_t p = i & 1;
    obj.ll(p, v.data());
    const std::uint64_t expect_base = v[0];
    for (std::uint32_t k = 0; k < kW; ++k) CHECK_EQ(v[k], expect_base + k);
    for (std::uint32_t k = 0; k < kW; ++k) v[k] = 1000 + i + k;
    CHECK(obj.sc(p, v.data()));
  }
  obj.ll(0, v.data());
  CHECK_EQ(v[0], 1200u);
}

}  // namespace

int main() {
  help_path_for<llsc::Dw128LLSC>();
  help_path_for<llsc::Packed64LLSC>();
  std::printf("test_help_path: OK\n");
  return 0;
}
