// Deterministic exercise of the full protocol's help machinery, via the
// step hook. With N = 2 the probe window is P = 2, so aged validation
// tolerates a drift of up to 2 successful SCs; the hook stalls a reader
// right after it links X and drives the other process through a chosen
// number of successful SCs:
//
//   1 SC  -> drift 1: aged validation passes, no donation was posted (the
//            winner of tag 1 probes its own slot), the reader returns the
//            buffer it linked — still intact, the ring has not recycled it;
//   2 SCs -> drift 2: aged validation passes, but the winner of tag 2
//            probed slot 0 and donated pre-SC, so the reader's withdraw
//            CAS fails and it adopts the donated buffer (ll_helped without
//            ll_used_helped_value);
//   3 SCs -> drift 3 > P: validation fails and the reader must find the
//            donation already posted (the 4W+12 guarantee), returning the
//            value that was current at the donor's help validation — what
//            the donor's own LL read before its donating SC.
//
// In every case the object must stay fully functional afterwards: the
// ownership exchanges preserved the buffer accounting.
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/mwllsc.hpp"
#include "test_check.hpp"

using namespace mwllsc;

namespace {

constexpr std::uint32_t kW = 4;

template <class Engine>
struct HookState {
  core::MwLLSC<Engine>* obj = nullptr;
  std::uint32_t sc_rounds = 0;  // successful SCs to inject at ll:read_x
  bool fired = false;
  std::vector<std::uint64_t> before_donating_sc;  // value a rescue returns
};

template <class Engine>
void interfere(void* ctx, const char* point, std::uint32_t pid) {
  auto* st = static_cast<HookState<Engine>*>(ctx);
  if (st->fired || pid != 0) return;
  if (std::strcmp(point, "ll:read_x") != 0) return;
  st->fired = true;  // no reentrant interference from pid 1's own ops
  // The winner of tag U probes slot U mod 2: tags 1 and 3 probe pid 1's
  // own slot (no-op), tag 2 probes the stalled reader's slot 0 and
  // donates there, pre-SC.
  std::vector<std::uint64_t> v(kW);
  for (std::uint64_t round = 1; round <= st->sc_rounds; ++round) {
    st->obj->ll(1, v.data());
    if (st->obj->stats().helps_given == 0) st->before_donating_sc = v;
    for (std::uint32_t i = 0; i < kW; ++i) v[i] = 100 * round + i;
    CHECK(st->obj->sc(1, v.data()));
  }
}

/// Runs LL(0) with `sc_rounds` successful SCs injected after its X link;
/// returns the value the LL produced.
template <class Engine>
std::vector<std::uint64_t> stalled_ll(core::MwLLSC<Engine>& obj,
                                      HookState<Engine>& st,
                                      std::uint32_t sc_rounds) {
  st.obj = &obj;
  st.sc_rounds = sc_rounds;
  st.fired = false;
  obj.set_step_hook(&interfere<Engine>, &st);
  std::vector<std::uint64_t> out(kW);
  obj.ll(0, out.data());
  obj.set_step_hook(nullptr, nullptr);
  CHECK(st.fired);
  return out;
}

// Drift 3 > P: the rescue path. The reader must return the donated
// snapshot with the helped/rescue/help-install counters firing exactly
// once, and the defensive retry arm must never run.
template <class Engine>
void rescue_path() {
  core::MwLLSC<Engine> obj(2, kW);
  HookState<Engine> st;
  const auto out = stalled_ll(obj, st, 3);

  const auto s = obj.stats();
  CHECK_EQ(s.helps_given, 1u);
  CHECK_EQ(s.ll_helped, 1u);
  CHECK_EQ(s.ll_used_helped_value, 1u);
  CHECK_EQ(s.ll_retries, 0u);
  CHECK_EQ(s.bank_writes, 3u);

  // The rescue returned the value current at the donor's help validation
  // — exactly what the donor's LL read before its donating SC.
  CHECK(out == st.before_donating_sc);
  CHECK_EQ(out[0], 100u);

  // A helped LL's link is already broken: an SC succeeded meanwhile.
  std::vector<std::uint64_t> tmp = out;
  CHECK(!obj.vl(0));
  CHECK(!obj.sc(0, tmp.data()));

  // The ownership exchanges must leave the buffer pool consistent: both
  // processes keep operating and observe each other's updates.
  std::vector<std::uint64_t> v(kW);
  for (std::uint64_t i = 1; i <= 200; ++i) {
    const std::uint32_t p = i & 1;
    obj.ll(p, v.data());
    const std::uint64_t expect_base = v[0];
    for (std::uint32_t k = 0; k < kW; ++k) CHECK_EQ(v[k], expect_base + k);
    for (std::uint32_t k = 0; k < kW; ++k) v[k] = 1000 + i + k;
    CHECK(obj.sc(p, v.data()));
  }
  obj.ll(0, v.data());
  CHECK_EQ(v[0], 1200u);
}

// Drift 2 = P: aged validation still passes — the linked buffer sat in
// the ring, unrecycled — but a donation raced in, so the withdraw CAS
// fails and the reader adopts the donated buffer without using its value.
template <class Engine>
void aged_pass_with_donation() {
  core::MwLLSC<Engine> obj(2, kW);
  HookState<Engine> st;
  const auto out = stalled_ll(obj, st, 2);

  for (auto x : out) CHECK_EQ(x, 0u);  // the linked (initial) snapshot
  const auto s = obj.stats();
  CHECK_EQ(s.helps_given, 1u);
  CHECK_EQ(s.ll_helped, 1u);
  CHECK_EQ(s.ll_used_helped_value, 0u);
  CHECK_EQ(s.ll_retries, 0u);
  CHECK(!obj.vl(0));  // drift broke the link even though the value stands

  // Still fully functional.
  std::vector<std::uint64_t> v(kW);
  obj.ll(1, v.data());
  CHECK_EQ(v[0], 200u);
  v[0] = 777;
  CHECK(obj.sc(1, v.data()));
}

// Drift 1 < P with no donation (tag 1's winner probes its own slot): the
// plain aged-validation pass, clean withdraw.
template <class Engine>
void aged_pass_plain() {
  core::MwLLSC<Engine> obj(2, kW);
  HookState<Engine> st;
  const auto out = stalled_ll(obj, st, 1);

  for (auto x : out) CHECK_EQ(x, 0u);
  const auto s = obj.stats();
  CHECK_EQ(s.helps_given, 0u);
  CHECK_EQ(s.ll_helped, 0u);
  CHECK_EQ(s.ll_retries, 0u);
  CHECK(!obj.vl(0));
}

template <class Engine>
void help_path_for() {
  rescue_path<Engine>();
  aged_pass_with_donation<Engine>();
  aged_pass_plain<Engine>();
}

}  // namespace

int main() {
  help_path_for<llsc::Dw128LLSC>();
  help_path_for<llsc::Packed64LLSC>();
  std::printf("test_help_path: OK\n");
  return 0;
}
