// test_lint: the ctest gate on the memory-ordering discipline
// (DESIGN.md §9). Three layers:
//   1. the fixture corpus under tests/lint_fixtures/ — each bad_*.hpp
//      seeds exactly one violation of one rule, suppressed.hpp exercises
//      the suppression annotation;
//   2. the clean gate — the real include/ tree at HEAD must produce zero
//      findings, so every seq_cst site keeps its contract forever;
//   3. the --json report — emit and re-load round-trip, including escape
//      handling, plus annotation-window edge cases fed via scan_source.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/model.hpp"
#include "lint/report.hpp"
#include "lint/rules.hpp"
#include "lint/source.hpp"
#include "test_check.hpp"

namespace fs = std::filesystem;
using namespace mwllsc::lint;

namespace {

#ifndef MWLLSC_LINT_FIXTURE_DIR
#error "tests/CMakeLists.txt must define MWLLSC_LINT_FIXTURE_DIR"
#endif
#ifndef MWLLSC_LINT_INCLUDE_DIR
#error "tests/CMakeLists.txt must define MWLLSC_LINT_INCLUDE_DIR"
#endif

LintResult lint_path(const std::string& path) {
  LintResult r;
  SourceFile src = load_file(path);
  CHECK(src.ok);
  FileModel m = build_model(std::move(src));
  run_rules(m, &r);
  return r;
}

LintResult lint_text(const std::string& text) {
  LintResult r;
  FileModel m = build_model(scan_source("mem.hpp", text));
  run_rules(m, &r);
  return r;
}

void expect_single(const char* file, const char* rule) {
  const LintResult r =
      lint_path(std::string(MWLLSC_LINT_FIXTURE_DIR) + "/" + file);
  if (r.findings.size() != 1 ||
      r.findings[0].rule != rule) {
    std::fprintf(stderr, "fixture %s: want exactly one %s, got:\n", file,
                 rule);
    print_findings(r, stderr);
    std::abort();
  }
  CHECK_EQ(r.suppressed, 0);
}

void test_fixture_corpus() {
  expect_single("bad_r1.hpp", "R1");
  expect_single("bad_r2.hpp", "R2");
  expect_single("obs/bad_r3.hpp", "R3");
  expect_single("bad_r4.hpp", "R4");
  expect_single("bad_r5.hpp", "R5");
  expect_single("bad_r5_slot.hpp", "R5");

  // The suppressed fixture has a real R1 under a suppression annotation:
  // zero findings, and the suppression is accounted for.
  const LintResult r =
      lint_path(std::string(MWLLSC_LINT_FIXTURE_DIR) + "/suppressed.hpp");
  CHECK(r.findings.empty());
  CHECK_EQ(r.suppressed, 1);
}

// The whole point of the gate: the shipped headers stay clean, so any new
// unargued seq_cst (or unpadded shared atomic, or defaulted order) fails
// ctest, not just CI.
void test_include_tree_clean() {
  std::vector<std::string> files;
  for (fs::recursive_directory_iterator it(MWLLSC_LINT_INCLUDE_DIR), end;
       it != end; ++it) {
    if (it->is_regular_file() &&
        it->path().extension().string() == ".hpp") {
      files.push_back(it->path().generic_string());
    }
  }
  CHECK(files.size() >= 20);  // the tree is really there

  LintResult all;
  for (const std::string& f : files) {
    SourceFile src = load_file(f);
    CHECK(src.ok);
    FileModel m = build_model(std::move(src));
    run_rules(m, &all);
  }
  if (!all.findings.empty()) {
    std::fprintf(stderr, "include/ must lint clean at HEAD:\n");
    print_findings(all, stderr);
    std::abort();
  }
  CHECK_EQ(all.files, static_cast<int>(files.size()));
}

void test_annotation_window() {
  // A contract on the line just above binds...
  const char* near_contract =
      "struct alignas(64) S {\n"
      "  std::atomic<int> a{0};\n"
      "  void f() {\n"
      "    // mwllsc-ordering: seq_cst(window check)\n"
      "    a.store(1, std::memory_order_seq_cst);\n"
      "  }\n"
      "};\n";
  CHECK(lint_text(near_contract).findings.empty());

  // ...kAnnotationWindow lines above still binds...
  const char* boundary =
      "struct alignas(64) S {\n"
      "  std::atomic<int> a{0};\n"
      "  void f() {\n"
      "    // mwllsc-ordering: seq_cst(exactly kAnnotationWindow away)\n"
      "    int x = 0;\n"
      "    int y = 1;\n"
      "    a.store(x + y, std::memory_order_seq_cst);\n"
      "  }\n"
      "};\n";
  CHECK(lint_text(boundary).findings.empty());

  // ...but one line further is out of range: the access loses its
  // contract AND the contract goes stale — two findings, both R2.
  const char* too_far =
      "struct alignas(64) S {\n"
      "  std::atomic<int> a{0};\n"
      "  void f() {\n"
      "    // mwllsc-ordering: seq_cst(one line too far)\n"
      "    int x = 0;\n"
      "    int y = 1;\n"
      "    int z = 2;\n"
      "    a.store(x + y + z, std::memory_order_seq_cst);\n"
      "  }\n"
      "};\n";
  const LintResult far = lint_text(too_far);
  CHECK_EQ(far.findings.size(), 2u);
  CHECK(far.findings[0].rule == "R2");
  CHECK(far.findings[1].rule == "R2");
}

void test_suppress_multiple_rules() {
  const char* multi =
      "struct S {\n"
      "  // mwllsc-lint-suppress(R1, R5: fixture, both rules at once)\n"
      "  std::atomic<int> a{0};\n"
      "  void f() {\n"
      "    // mwllsc-lint-suppress(R1: and the access too)\n"
      "    a.fetch_add(1);\n"
      "  }\n"
      "};\n";
  const LintResult r = lint_text(multi);
  CHECK(r.findings.empty());
  CHECK_EQ(r.suppressed, 2);
}

void test_json_round_trip() {
  LintResult orig;
  orig.files = 3;
  orig.suppressed = 2;
  Finding f;
  f.file = "include/mwllsc/core/\"quoted\".hpp";
  f.line = 42;
  f.line_end = 44;
  f.rule = "R2";
  f.message = "seq_cst access with\nno contract\tat all";
  f.hint = "add 'mwllsc-ordering: seq_cst(...)' \\ nearby";
  f.snippet = "a.store(v, std::memory_order_seq_cst);";
  orig.findings.push_back(f);
  f.file = "bench/bench_common.hpp";
  f.line = 7;
  f.line_end = 7;
  f.rule = "R1";
  f.message = "defaulted order";
  f.hint = "";
  f.snippet = "";
  orig.findings.push_back(f);

  const std::string json = report_json(orig);
  CHECK(json.find("\"tool\": \"mwllsc_lint\"") != std::string::npos);
  CHECK(json.find("\"schema_version\": 1") != std::string::npos);

  LintResult back;
  std::string err;
  CHECK(load_report_json(json, &back, &err));
  CHECK_EQ(back.files, orig.files);
  CHECK_EQ(back.suppressed, orig.suppressed);
  CHECK_EQ(back.findings.size(), orig.findings.size());
  for (std::size_t i = 0; i < orig.findings.size(); ++i) {
    CHECK(back.findings[i].file == orig.findings[i].file);
    CHECK_EQ(back.findings[i].line, orig.findings[i].line);
    CHECK(back.findings[i].rule == orig.findings[i].rule);
    CHECK(back.findings[i].message == orig.findings[i].message);
    CHECK(back.findings[i].hint == orig.findings[i].hint);
    CHECK(back.findings[i].snippet == orig.findings[i].snippet);
  }

  // Not-a-report input is rejected, not half-parsed.
  LintResult junk;
  CHECK(!load_report_json("{\"tool\": \"other\"}", &junk, &err));
}

}  // namespace

int main() {
  test_fixture_corpus();
  test_include_tree_clean();
  test_annotation_window();
  test_suppress_multiple_rules();
  test_json_round_trip();
  std::printf("test_lint: all checks passed\n");
  return 0;
}
