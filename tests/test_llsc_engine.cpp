// Single-word LL/SC engine semantics: round-trips, semantic SC failure
// (fails iff a successful SC intervened), VL, link consumption, and the
// value-width contract of both engines.
#include <cstdint>

#include "core/llsc.hpp"
#include "test_check.hpp"

using namespace mwllsc;

namespace {

template <class Engine>
void engine_semantics(std::uint64_t value_mask) {
  Engine x(3, 7 & value_mask);
  CHECK_EQ(x.peek(), 7 & value_mask);

  // Round trip: LL then SC with no interference succeeds.
  CHECK_EQ(x.ll(0), 7 & value_mask);
  CHECK(x.vl(0));
  CHECK(x.sc(0, 11));
  CHECK_EQ(x.peek(), 11u);

  // The link was consumed by the SC: VL and a second SC fail until re-LL.
  CHECK(!x.vl(0));
  CHECK(!x.sc(0, 12));
  CHECK_EQ(x.peek(), 11u);

  // Semantic failure: p1 links, p2's SC intervenes, p1's SC must fail.
  CHECK_EQ(x.ll(1), 11u);
  CHECK_EQ(x.ll(2), 11u);
  CHECK(x.sc(2, 21));
  CHECK(!x.vl(1));
  CHECK(!x.sc(1, 22));
  CHECK_EQ(x.peek(), 21u);

  // ABA at the value level is defeated by the tag: restore the old value
  // via two SCs; a stale link must still fail.
  CHECK_EQ(x.ll(0), 21u);
  CHECK_EQ(x.ll(1), 21u);
  CHECK(x.sc(1, 5));
  CHECK_EQ(x.ll(1), 5u);
  CHECK(x.sc(1, 21));  // value back to 21, but the tag moved twice
  CHECK_EQ(x.peek(), 21u);
  CHECK(!x.vl(0));
  CHECK(!x.sc(0, 99));

  // SC without any LL fails.
  Engine y(2, 0);
  CHECK(!y.sc(0, 1));
  CHECK(!y.vl(0));

  // Tags advance once per successful SC.
  Engine z(1, 0);
  CHECK_EQ(z.current_tag(), 0u);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    z.ll(0);
    CHECK_EQ(z.linked_tag(0), i - 1);
    CHECK(z.sc(0, i & value_mask));
    CHECK_EQ(z.current_tag(), i);
  }

  // Space accounting exposes both shared and private parts.
  CHECK(x.shared_bytes() > 0);
  CHECK(x.private_bytes() > 0);
}

// Tag arithmetic near the wrap boundary (the Packed64 operating envelope,
// see llsc.hpp): semantics must stay exact right up to kMaxTag, and the
// masked wrap in release builds must keep the engine functional — only the
// ABA guarantee lapses (debug builds assert instead of crossing).
void tag_wrap_envelope() {
  using Engine = llsc::Packed64LLSC;
  constexpr std::uint64_t kMax = Engine::kMaxTag;
  static_assert(kMax == (std::uint64_t{1} << 32) - 1);

  // Pre-age the variable to three SCs before the boundary.
  Engine x(2, 7, kMax - 3);
  CHECK_EQ(x.current_tag(), kMax - 3);
  CHECK_EQ(x.ll(0), 7u);
  CHECK(x.sc(0, 8));
  CHECK_EQ(x.current_tag(), kMax - 2);

  // Semantic failure still exact two SCs before the boundary.
  CHECK_EQ(x.ll(0), 8u);
  CHECK_EQ(x.ll(1), 8u);
  CHECK(x.sc(1, 9));
  CHECK_EQ(x.current_tag(), kMax - 1);
  CHECK(!x.vl(0));
  CHECK(!x.sc(0, 10));
  CHECK_EQ(x.peek(), 9u);

  // Installing the maximum tag itself is inside the envelope — except for
  // the reserved all-ones word (value kValueMask at tag kMaxTag, the
  // kUnlinked sentinel), which debug builds refuse to install.
  CHECK_EQ(x.ll(0), 9u);
  CHECK(x.sc(0, 11));
  CHECK_EQ(x.current_tag(), kMax);
  CHECK_EQ(x.ll(1), 11u);
  CHECK(x.vl(1));

#ifdef NDEBUG
  // Crossing the boundary: release builds wrap the tag to 0 (debug builds
  // assert in sc). The engine keeps functioning; only ABA protection has
  // been exhausted.
  CHECK(x.sc(1, 12));
  CHECK_EQ(x.current_tag(), 0u);
  CHECK_EQ(x.peek(), 12u);
  CHECK_EQ(x.ll(0), 12u);
  CHECK(x.sc(0, 13));
  CHECK_EQ(x.current_tag(), 1u);
#endif

  // The 64-bit-tag engine accepts pre-aging too (no practical boundary).
  llsc::Dw128LLSC y(1, 5, 1000);
  CHECK_EQ(y.current_tag(), 1000u);
  CHECK_EQ(y.ll(0), 5u);
  CHECK(y.sc(0, 6));
  CHECK_EQ(y.current_tag(), 1001u);
}

}  // namespace

int main() {
  engine_semantics<llsc::Dw128LLSC>(~std::uint64_t{0});
  engine_semantics<llsc::Packed64LLSC>((std::uint64_t{1} << 32) - 1);
  tag_wrap_envelope();
  static_assert(llsc::Dw128LLSC::kValueBits == 64);
  static_assert(llsc::Packed64LLSC::kValueBits == 32);
  std::printf("test_llsc_engine: OK\n");
  return 0;
}
