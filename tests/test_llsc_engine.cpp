// Single-word LL/SC engine semantics: round-trips, semantic SC failure
// (fails iff a successful SC intervened), VL, link consumption, and the
// value-width contract of both engines.
#include <cstdint>

#include "core/llsc.hpp"
#include "test_check.hpp"

using namespace mwllsc;

namespace {

template <class Engine>
void engine_semantics(std::uint64_t value_mask) {
  Engine x(3, 7 & value_mask);
  CHECK_EQ(x.peek(), 7 & value_mask);

  // Round trip: LL then SC with no interference succeeds.
  CHECK_EQ(x.ll(0), 7 & value_mask);
  CHECK(x.vl(0));
  CHECK(x.sc(0, 11));
  CHECK_EQ(x.peek(), 11u);

  // The link was consumed by the SC: VL and a second SC fail until re-LL.
  CHECK(!x.vl(0));
  CHECK(!x.sc(0, 12));
  CHECK_EQ(x.peek(), 11u);

  // Semantic failure: p1 links, p2's SC intervenes, p1's SC must fail.
  CHECK_EQ(x.ll(1), 11u);
  CHECK_EQ(x.ll(2), 11u);
  CHECK(x.sc(2, 21));
  CHECK(!x.vl(1));
  CHECK(!x.sc(1, 22));
  CHECK_EQ(x.peek(), 21u);

  // ABA at the value level is defeated by the tag: restore the old value
  // via two SCs; a stale link must still fail.
  CHECK_EQ(x.ll(0), 21u);
  CHECK_EQ(x.ll(1), 21u);
  CHECK(x.sc(1, 5));
  CHECK_EQ(x.ll(1), 5u);
  CHECK(x.sc(1, 21));  // value back to 21, but the tag moved twice
  CHECK_EQ(x.peek(), 21u);
  CHECK(!x.vl(0));
  CHECK(!x.sc(0, 99));

  // SC without any LL fails.
  Engine y(2, 0);
  CHECK(!y.sc(0, 1));
  CHECK(!y.vl(0));

  // Tags advance once per successful SC.
  Engine z(1, 0);
  CHECK_EQ(z.current_tag(), 0u);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    z.ll(0);
    CHECK_EQ(z.linked_tag(0), i - 1);
    CHECK(z.sc(0, i & value_mask));
    CHECK_EQ(z.current_tag(), i);
  }

  // Space accounting exposes both shared and private parts.
  CHECK(x.shared_bytes() > 0);
  CHECK(x.private_bytes() > 0);
}

}  // namespace

int main() {
  engine_semantics<llsc::Dw128LLSC>(~std::uint64_t{0});
  engine_semantics<llsc::Packed64LLSC>((std::uint64_t{1} << 32) - 1);
  static_assert(llsc::Dw128LLSC::kValueBits == 64);
  static_assert(llsc::Packed64LLSC::kValueBits == 32);
  std::printf("test_llsc_engine: OK\n");
  return 0;
}
