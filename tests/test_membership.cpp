// The process lifecycle layer (DESIGN.md §10): SlotRegistry state machine,
// ProcessSlot RAII, ManagedMwLLSC join/retire/crash-reclaim over the real
// protocol object, graceful degradation under slot exhaustion, the
// withdraw-vs-reclaim race in core ll(), lifecycle trace events through
// the offline checker, and a multithreaded churn run (threads > slots)
// with cooperative crashes and a maintenance reclaimer.
// Compiled with MWLLSC_TRACE so the lifecycle events are observable.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/mwllsc.hpp"
#include "membership/managed.hpp"
#include "membership/registry.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_check.hpp"

using namespace mwllsc;
using membership::ManagedMwLLSC;
using membership::ProcessSlot;
using membership::SlotRegistry;

namespace {

using Jp = core::MwLLSC<llsc::Dw128LLSC>;
using Managed = ManagedMwLLSC<Jp>;

// ---------------------------------------------------------- slot registry

void registry_state_machine() {
  SlotRegistry reg(2, /*suspect_scans=*/2);
  CHECK_EQ(reg.capacity(), 2u);
  CHECK_EQ(reg.active(), 0u);

  const std::uint32_t a = reg.try_acquire();
  const std::uint32_t b = reg.try_acquire();
  CHECK(a != SlotRegistry::kNone && b != SlotRegistry::kNone && a != b);
  CHECK_EQ(reg.active(), 2u);
  CHECK_EQ(reg.try_acquire(), SlotRegistry::kNone);  // exhausted: bounded

  // Clean release: CAS on the claimed generation; a second release of the
  // same incarnation must fail (the generation moved on).
  const std::uint64_t gen_a = reg.generation(a);
  CHECK(reg.release(a, gen_a));
  CHECK(!reg.release(a, gen_a));
  CHECK_EQ(reg.active(), 1u);

  // Re-claim bumps the generation past the released one.
  const std::uint32_t a2 = reg.try_acquire();
  CHECK(a2 != SlotRegistry::kNone);
  CHECK(reg.generation(a2) > gen_a);

  // Cooperative crash: ORPHANED until a scan recycles it; on_dead runs for
  // exactly that slot.
  CHECK(reg.abandon(b, reg.generation(b)));
  CHECK_EQ(reg.state(b), SlotRegistry::kOrphaned);
  std::vector<std::uint32_t> dead;
  CHECK_EQ(reg.scan([&](std::uint32_t s) { dead.push_back(s); },
                    /*include_stale=*/false),
           1u);
  CHECK_EQ(dead.size(), std::size_t{1});
  CHECK_EQ(dead[0], b);
  CHECK_EQ(reg.state(b), SlotRegistry::kFree);
}

void registry_heartbeat_reclaim() {
  SlotRegistry reg(1, /*suspect_scans=*/2);
  const std::uint32_t s = reg.try_acquire();
  CHECK(s != SlotRegistry::kNone);
  const std::uint64_t gen = reg.generation(s);

  std::uint32_t reclaimed = 0;
  auto on_dead = [&](std::uint32_t) { ++reclaimed; };
  // Scan 1 records the baseline; a beat resets the suspicion.
  CHECK_EQ(reg.scan(on_dead), 0u);
  reg.beat(s);
  CHECK_EQ(reg.scan(on_dead), 0u);  // hb moved: baseline re-recorded
  CHECK_EQ(reg.scan(on_dead), 0u);  // stale 1 < suspect_scans
  CHECK_EQ(reg.scan(on_dead), 1u);  // stale 2: condemned
  CHECK_EQ(reclaimed, 1u);
  // The holder comes back: its release must fail — it was presumed dead.
  CHECK(!reg.release(s, gen));
  // Orphan-only scans never condemn by staleness.
  const std::uint32_t s2 = reg.try_acquire();
  CHECK(s2 != SlotRegistry::kNone);
  for (int i = 0; i < 10; ++i) {
    CHECK_EQ(reg.scan(on_dead, /*include_stale=*/false), 0u);
  }
  CHECK_EQ(reg.state(s2), SlotRegistry::kActive);
}

void raii_guard() {
  SlotRegistry reg(1);
  {
    const std::uint32_t s = reg.try_acquire();
    ProcessSlot guard(&reg, s);
    CHECK(guard.valid());
    CHECK_EQ(guard.id(), s);
    ProcessSlot moved(std::move(guard));
    CHECK(!guard.valid());
    CHECK(moved.valid());
  }  // moved's dtor released
  CHECK_EQ(reg.active(), 0u);
  const std::uint32_t again = reg.try_acquire();
  CHECK(again != SlotRegistry::kNone);
  ProcessSlot guard(&reg, again);
  guard.abandon();
  CHECK(!guard.valid());
  CHECK_EQ(reg.state(again), SlotRegistry::kOrphaned);
}

// ------------------------------------------------------- managed sessions

void managed_basic() {
  Managed m(2, 3);
  CHECK_EQ(m.words(), 3u);

  auto a = m.join();
  auto b = m.join();
  CHECK(a.valid() && !a.degraded());
  CHECK(b.valid() && !b.degraded());
  CHECK(a.pid() != b.pid());

  // Cross-session counter semantics on the one shared variable.
  std::vector<std::uint64_t> v(3);
  a.ll(v.data());
  v[0] += 1;
  CHECK(a.sc(v.data()));
  b.ll(v.data());
  CHECK_EQ(v[0], 1u);
  v[0] += 1;
  CHECK(b.sc(v.data()));

  // SC link is consumed; VL without a fresh LL is stale.
  CHECK(!b.sc(v.data()));

  CHECK(a.retire());
  CHECK(b.retire());
  const auto s = m.membership();
  CHECK_EQ(s.joins, 2u);
  CHECK_EQ(s.retires, 2u);
  CHECK_EQ(s.degraded_joins, 0u);
  CHECK_EQ(s.active, 0u);

  // A retired pid's slot is immediately claimable, and the new holder
  // starts unlinked: SC without LL fails.
  auto c = m.join();
  CHECK(!c.degraded());
  CHECK(!c.sc(v.data()));
  c.ll(v.data());
  CHECK_EQ(v[0], 2u);
}

void degraded_path() {
  Managed m(1, 2);
  auto a = m.join();
  CHECK(!a.degraded());

  // Slot pool exhausted and nothing to reclaim: degrade, don't fail.
  auto d1 = m.join();
  CHECK(d1.valid());
  CHECK(d1.degraded());
  CHECK_EQ(d1.pid(), m.reserved_pid());

  // Degraded SC without a prior LL is a semantic failure, not a deadlock.
  std::vector<std::uint64_t> v(2);
  CHECK(!d1.sc(v.data()));

  // Degraded sessions linearize with wait-free ones on the same variable:
  // a's link must die when the degraded session's SC lands.
  a.ll(v.data());
  d1.ll(v.data());
  CHECK(d1.vl());
  v[0] = 7;
  CHECK(d1.sc(v.data()));
  CHECK(!a.sc(v.data()));
  a.ll(v.data());
  CHECK_EQ(v[0], 7u);
  CHECK(a.vl());

  // Two degraded sessions serialize (lock released at SC): no deadlock.
  auto d2 = m.join();
  CHECK(d2.degraded());
  d1.ll(v.data());
  v[0] = 8;
  CHECK(d1.sc(v.data()));
  d2.ll(v.data());
  CHECK_EQ(v[0], 8u);
  v[0] = 9;
  CHECK(d2.sc(v.data()));
  CHECK(d1.retire());
  CHECK(d2.retire());

  const auto s = m.membership();
  CHECK_EQ(s.degraded_joins, 2u);
  CHECK(s.join_retries >= 2u);

  // Once a slot frees up, joins are wait-free again.
  CHECK(a.retire());
  auto back = m.join();
  CHECK(!back.degraded());
}

void orphan_reclaim_on_join() {
  Managed m(2, 2);
  auto a = m.join();
  auto b = m.join();
  std::vector<std::uint64_t> v(2);
  a.ll(v.data());  // crash mid-link: announce settled, link open
  a.abandon();

  // Exhausted, but a join-retry orphan sweep recycles a's slot — no
  // degradation needed, and the reclaim settled the dead pid's announce.
  auto c = m.join();
  CHECK(!c.degraded());
  const auto s = m.membership();
  CHECK_EQ(s.crash_reclaims, 1u);
  CHECK(s.join_retries >= 1u);
  CHECK_EQ(s.degraded_joins, 0u);

  // The recycled pid is quiescent: no link, ops run clean.
  CHECK(!c.sc(v.data()));
  c.ll(v.data());
  v[0] += 1;
  CHECK(c.sc(v.data()));
  CHECK(b.valid());
  b.ll(v.data());
  CHECK_EQ(v[0], 1u);
}

// The withdraw-vs-reclaim race in core ll(): a "zombie" whose pid is
// reclaimed between its announce and its withdraw must take the tolerant
// branch — link broken, no assert, subsequent SC fails semantically.
struct ReclaimRaceState {
  Jp* obj = nullptr;
  std::uint32_t zombie = 0;
  bool fired = false;
};

void reclaim_race_hook(void* ctx, const char* point, std::uint32_t pid) {
  auto* st = static_cast<ReclaimRaceState*>(ctx);
  if (st->fired || pid != st->zombie) return;
  if (std::strcmp(point, "ll:announced") != 0) return;
  st->fired = true;
  // Simulate the reclaimer concluding this pid is dead exactly between
  // its announce and its withdraw.
  st->obj->reclaim_pid(st->zombie);
}

void withdraw_reclaim_race() {
  Jp obj(2, 2);
  ReclaimRaceState st{&obj, 0, false};
  obj.set_step_hook(&reclaim_race_hook, &st);
  std::vector<std::uint64_t> v(2);
  obj.ll(0, v.data());
  obj.set_step_hook(nullptr, nullptr);
  CHECK(st.fired);
  // The zombie's link is gone (its announce was withdrawn by proxy); its
  // SC must fail semantically, not corrupt the help machinery.
  CHECK(!obj.vl(0));
  CHECK(!obj.sc(0, v.data()));
  // The object stays fully functional for the other pid.
  obj.ll(1, v.data());
  v[0] = 5;
  CHECK(obj.sc(1, v.data()));
  obj.ll(1, v.data());
  CHECK_EQ(v[0], 5u);
}

// ------------------------------------------------------- lifecycle traces

void traced_lifecycle() {
  obs::TraceConfig tcfg;
  tcfg.capacity = 1u << 14;
  Managed m(2, 2);
  obs::TraceSink sink(m.slots() + 1, tcfg);  // + the reserved degraded pid
  m.set_trace(&sink, 0);

  std::vector<std::uint64_t> v(2);
  auto a = m.join();
  auto b = m.join();
  a.ll(v.data());
  v[0] += 1;
  CHECK(a.sc(v.data()));
  a.abandon();                       // crash...
  auto d = m.join();                 // exhaustion: join-retry orphan sweep
  CHECK(!d.degraded());              // ...recycled the corpse's slot
  CHECK(d.retire());
  CHECK(b.retire());

  const obs::TraceData data = sink.collect();
  const auto r = obs::check_trace(data);
  if (!r.ok()) {
    for (const auto& viol : r.violations)
      std::fprintf(stderr, "  %s\n", viol.c_str());
  }
  CHECK(r.ok());
  CHECK_EQ(r.joins, 3u);
  CHECK_EQ(r.retires, 2u);
  CHECK_EQ(r.crash_reclaims, 1u);

  // Lifecycle events survive the file round-trip with the same verdict.
  const std::string path = "test_membership_trace.json";
  CHECK(obs::write_chrome_trace(path, data));
  obs::TraceData loaded;
  CHECK(obs::load_chrome_trace(path, &loaded));
  const auto r2 = obs::check_trace(loaded);
  CHECK(r2.ok());
  CHECK_EQ(r2.joins, r.joins);
  CHECK_EQ(r2.retires, r.retires);
  CHECK_EQ(r2.crash_reclaims, r.crash_reclaims);
  std::remove(path.c_str());
}

// The checker's lifecycle rules, on hand-built streams: leases must not
// overlap, retire must not leave an LL open, dead pids stay silent.
obs::TraceEvent ev(obs::EventKind k, std::uint32_t pid, std::uint64_t tsc,
                   std::uint32_t arg = 0) {
  obs::TraceEvent e{};
  e.tsc = tsc;
  e.tag = 0;
  e.var = 0;
  e.arg = arg;
  e.kind = static_cast<std::uint16_t>(k);
  e.pid = static_cast<std::uint16_t>(pid);
  return e;
}

void checker_lifecycle_rules() {
  using obs::EventKind;
  auto base = [] {
    obs::TraceData d;
    d.per_pid.resize(1);
    d.dropped.assign(1, 0);
    obs::TraceData::VarInfo vi;
    vi.id = 0;
    vi.words = 2;
    vi.label = "jp";
    d.vars.push_back(vi);
    return d;
  };

  {  // double join without retire
    obs::TraceData d = base();
    d.per_pid[0] = {ev(EventKind::kProcJoin, 0, 1),
                    ev(EventKind::kProcJoin, 0, 2)};
    const auto r = obs::check_trace(d);
    CHECK(!r.ok());
    CHECK(r.violations[0].find("already live") != std::string::npos);
  }
  {  // retire with an open LL window
    obs::TraceData d = base();
    d.per_pid[0] = {ev(EventKind::kProcJoin, 0, 1),
                    ev(EventKind::kLlStart, 0, 2),
                    ev(EventKind::kProcRetire, 0, 3)};
    const auto r = obs::check_trace(d);
    CHECK(!r.ok());
    CHECK(r.violations[0].find("open LL") != std::string::npos);
  }
  {  // protocol activity after retire
    obs::TraceData d = base();
    d.per_pid[0] = {ev(EventKind::kProcJoin, 0, 1),
                    ev(EventKind::kProcRetire, 0, 2),
                    ev(EventKind::kLlStart, 0, 3),
                    ev(EventKind::kLlFast, 0, 4)};
    const auto r = obs::check_trace(d);
    CHECK(!r.ok());
    CHECK_EQ(r.violations.size(), std::size_t{1});  // one report per gap
    CHECK(r.violations[0].find("without a proc_join") != std::string::npos);
  }
  {  // clean lease cycle, including a crash reclaim, passes
    obs::TraceData d = base();
    d.per_pid[0] = {ev(EventKind::kProcJoin, 0, 1),
                    ev(EventKind::kLlStart, 0, 2),
                    ev(EventKind::kLlFast, 0, 3),
                    ev(EventKind::kProcCrashReclaim, 0, 4),
                    ev(EventKind::kProcJoin, 0, 5),
                    ev(EventKind::kProcRetire, 0, 6)};
    const auto r = obs::check_trace(d);
    CHECK(r.ok());
    CHECK_EQ(r.joins, 2u);
  }
  {  // overlapping degraded leases (arg=1) are legal on the shared pid
    obs::TraceData d = base();
    d.per_pid[0] = {ev(EventKind::kProcJoin, 0, 1, 1),
                    ev(EventKind::kProcJoin, 0, 2, 1),
                    ev(EventKind::kProcRetire, 0, 3, 1),
                    ev(EventKind::kProcRetire, 0, 4, 1)};
    const auto r = obs::check_trace(d);
    CHECK(r.ok());
  }
}

// -------------------------------------------------------------- MT churn

void mt_churn() {
  constexpr std::uint32_t kSlots = 3;
  constexpr unsigned kThreads = 6;
  constexpr unsigned kSessions = 60;
  constexpr unsigned kOpsPerSession = 25;

  Managed m(kSlots, 2, /*suspect_scans=*/1000000);  // staleness disarmed
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> abandons{0};

  // Maintenance reclaimer: orphan-only sweeps (heartbeat condemnation is
  // deliberately disarmed — threads here can be descheduled arbitrarily,
  // exactly the false-positive scenario the policy knob exists for).
  std::thread reaper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      m.reclaim_scan(/*include_stale=*/false);
      std::this_thread::yield();
    }
    m.reclaim_scan(/*include_stale=*/false);
  });

  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      std::vector<std::uint64_t> v(2);
      for (unsigned sess = 0; sess < kSessions; ++sess) {
        auto s = m.join();
        for (unsigned op = 0; op < kOpsPerSession; ++op) {
          // Retry until this session's increment lands (SC failures are
          // semantic: somebody else's SC intervened).
          for (;;) {
            s.ll(v.data());
            v[0] += 1;
            v[1] = t;
            if (s.sc(v.data())) break;
          }
        }
        if (!s.degraded() && sess % 7 == 3) {
          s.abandon();  // cooperative crash, mid-pool
          abandons.fetch_add(1, std::memory_order_relaxed);
        } else {
          s.retire();
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  stop.store(true, std::memory_order_release);
  reaper.join();

  // Every increment that reported success is in the final value: the
  // lifecycle layer lost no SC and double-applied none.
  auto final_session = m.join();
  std::vector<std::uint64_t> v(2);
  final_session.ll(v.data());
  CHECK_EQ(v[0],
           std::uint64_t{kThreads} * kSessions * kOpsPerSession);
  CHECK_EQ(v[0], m.stats().sc_success - 0u);
  final_session.retire();

  const auto s = m.membership();
  CHECK_EQ(s.joins + s.degraded_joins,
           std::uint64_t{kThreads} * kSessions + 1);
  CHECK_EQ(s.crash_reclaims, abandons.load());
  CHECK_EQ(s.retires + abandons.load(),
           std::uint64_t{kThreads} * kSessions + 1);
  CHECK_EQ(s.active, 0u);

  // Metrics surface the lifecycle series.
  obs::MetricsRegistry reg;
  m.export_metrics(reg, "impl=\"jp\"");
  CHECK(reg.metrics().count(
      "mwllsc_membership_joins_total{impl=\"jp\"}"));
  CHECK(reg.metrics().count(
      "mwllsc_membership_crash_reclaims_total{impl=\"jp\"}"));

  // Footprint gained the registry part.
  bool has_registry_part = false;
  const auto fp = m.footprint();
  for (const auto& part : fp.parts()) {
    if (part.name.find("membership") != std::string::npos) {
      has_registry_part = true;
    }
  }
  CHECK(has_registry_part);
}

}  // namespace

int main() {
  registry_state_machine();
  registry_heartbeat_reclaim();
  raii_guard();
  managed_basic();
  degraded_path();
  orphan_reclaim_on_join();
  withdraw_reclaim_race();
  traced_lifecycle();
  checker_lifecycle_rules();
  mt_churn();
  std::printf("test_membership: OK\n");
  return 0;
}
