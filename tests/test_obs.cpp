// obs/ layer tests, compiled WITH MWLLSC_TRACE (see tests/CMakeLists.txt;
// test_obs_off covers the compiled-out configuration):
//   * ring semantics — wraparound keeps the newest events, dropped counts
//     the evicted prefix, sampling records every 2^shift-th event;
//   * live tracing of the real protocol under threads, replayed through
//     check_trace: the 4W+12 bound and I2 re-verified from events alone;
//   * exporter round-trip — write_chrome_trace -> load_chrome_trace must
//     hand the checker the same windows the live rings did;
//   * truncated and sampled traces pass (prefix loss is not a violation);
//   * the checker actually rejects bad traces (synthetic violations);
//   * apps-layer events and the <= 3-round apply bound;
//   * MetricsRegistry absorption + Prometheus/JSON export.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/wf_universal.hpp"
#include "core/mwllsc.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_check.hpp"

using namespace mwllsc;

#if !defined(MWLLSC_TRACE)
#error "test_obs must be compiled with MWLLSC_TRACE (see tests/CMakeLists)"
#endif

namespace {

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  CHECK(f != nullptr);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

obs::TraceEvent ev(obs::EventKind k, std::uint16_t pid, std::uint32_t var,
                   std::uint64_t tag = 0, std::uint32_t arg = 0) {
  obs::TraceEvent e;
  static std::uint64_t tsc = 1000;
  e.tsc = tsc += 10;
  e.tag = tag;
  e.var = var;
  e.arg = arg;
  e.kind = static_cast<std::uint16_t>(k);
  e.pid = pid;
  return e;
}

void ring_wraparound() {
  obs::TraceRing ring;
  ring.init(8, 0);
  for (std::uint32_t i = 0; i < 20; ++i) {
    ring.record(obs::EventKind::kLlStart, 0, 0, i, 0);
  }
  CHECK_EQ(ring.recorded(), 20u);
  CHECK_EQ(ring.dropped(), 12u);
  const auto snap = ring.snapshot();
  CHECK_EQ(snap.size(), 8u);
  // The newest events win: tags 12..19 in recording order.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    CHECK_EQ(snap[i].tag, 12 + i);
  }
}

void ring_sampling() {
  obs::TraceRing ring;
  ring.init(64, 2);  // record every 4th event
  for (std::uint32_t i = 0; i < 40; ++i) {
    ring.record(obs::EventKind::kScAttempt, 1, 0, i, 0);
  }
  const auto snap = ring.snapshot();
  CHECK_EQ(snap.size(), 10u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    CHECK_EQ(snap[i].tag, 4 * i);
  }
}

void handle_binding() {
  obs::TraceSink sink(2);
  obs::TraceHandle h;
  CHECK(!h.bound());
  h.emit(obs::EventKind::kLlStart, 0, 1, 2);  // unbound: dropped, no crash
  h.bind(&sink, 7);
  CHECK(h.bound());
  h.emit(obs::EventKind::kLlStart, 1, 42, 3);
  h.emit(obs::EventKind::kLlFast, 99, 0, 0);  // out-of-range pid: dropped
  const auto d = sink.collect();
  CHECK_EQ(d.total_events(), 1u);
  CHECK_EQ(d.per_pid[1].size(), 1u);
  CHECK_EQ(d.per_pid[1][0].var, 7u);
  CHECK_EQ(d.per_pid[1][0].tag, 42u);
  CHECK_EQ(d.per_pid[1][0].arg, 3u);
}

/// Traces the real protocol under contention and replays the rings through
/// the checker: 4W+12 and I2 re-verified from events alone.
obs::TraceData traced_protocol_mt() {
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kW = 5;
  constexpr std::uint64_t kOps = 4000;

  obs::TraceConfig cfg;
  cfg.capacity = 1u << 16;  // no wraparound: every event survives
  obs::TraceSink sink(kThreads, cfg);
  core::MwLLSC<llsc::Dw128LLSC> obj(kThreads, kW);
  obj.set_trace(&sink, 0);

  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      std::vector<std::uint64_t> buf(kW);
      for (std::uint64_t i = 0; i < kOps; ++i) {
        obj.ll(t, buf.data());
        buf[0] += 1;
        obj.sc(t, buf.data());
      }
    });
  }
  for (auto& th : pool) th.join();

  obs::TraceData d = sink.collect();
  CHECK_EQ(d.per_pid.size(), kThreads);
  for (unsigned t = 0; t < kThreads; ++t) CHECK_EQ(d.dropped[t], 0u);
  const obs::TraceData::VarInfo* info = d.var_info(0);
  CHECK(info != nullptr);
  CHECK_EQ(info->words, kW);
  CHECK(info->label.rfind("jp", 0) == 0);

  const auto r = obs::check_trace(d);
  if (!r.ok()) {
    for (const auto& v : r.violations)
      std::fprintf(stderr, "  %s\n", v.c_str());
  }
  CHECK(r.ok());
  CHECK(!r.sampled);
  CHECK(!r.truncated);
  CHECK_EQ(r.lls_checked, kThreads * kOps);
  CHECK(r.sc_commits > 0);
  CHECK_EQ(r.sc_commits, r.bank_writes);
  CHECK(r.max_ll_steps <= 4 * kW + 12);

  // The counter snapshot and the trace must agree on the successful SCs.
  const auto s = obj.stats();
  CHECK_EQ(r.sc_commits, s.sc_success);
  CHECK_EQ(r.bank_writes, s.bank_writes);
  return d;
}

void export_roundtrip(const obs::TraceData& d) {
  const std::string path = "test_obs_trace.json";
  std::string err;
  CHECK(obs::write_chrome_trace(path, d, &err));

  obs::TraceData loaded;
  CHECK(obs::load_chrome_trace(path, &loaded, &err));
  CHECK_EQ(loaded.vars.size(), d.vars.size());
  CHECK_EQ(loaded.per_pid.size(), d.per_pid.size());
  CHECK_EQ(loaded.sample_shift, d.sample_shift);
  const obs::TraceData::VarInfo* info = loaded.var_info(0);
  CHECK(info != nullptr);
  CHECK_EQ(info->words, d.var_info(0)->words);
  CHECK(info->label == d.var_info(0)->label);

  // The file is a third correctness oracle: the checker must reach the
  // same verdict and the same window counts it reached on the live rings.
  const auto live = obs::check_trace(d);
  const auto file = obs::check_trace(loaded);
  if (!file.ok()) {
    for (const auto& v : file.violations)
      std::fprintf(stderr, "  %s\n", v.c_str());
  }
  CHECK(file.ok());
  CHECK_EQ(file.lls_checked, live.lls_checked);
  CHECK_EQ(file.sc_commits, live.sc_commits);
  CHECK_EQ(file.bank_writes, live.bank_writes);
  CHECK_EQ(file.max_ll_steps, live.max_ll_steps);

  const std::string text = slurp(path);
  CHECK(text.find("\"schema_version\"") != std::string::npos);
  CHECK(text.find("\"traceEvents\"") != std::string::npos);
  std::remove(path.c_str());
}

void truncation_tolerated() {
  obs::TraceConfig cfg;
  cfg.capacity = 64;  // force wraparound
  obs::TraceSink sink(1, cfg);
  core::MwLLSC<llsc::Dw128LLSC> obj(1, 3);
  obj.set_trace(&sink, 0);
  std::vector<std::uint64_t> buf(3);
  for (int i = 0; i < 1000; ++i) {
    obj.ll(0, buf.data());
    buf[0] += 1;
    CHECK(obj.sc(0, buf.data()));
  }
  const obs::TraceData d = sink.collect();
  CHECK(d.dropped[0] > 0);
  const auto r = obs::check_trace(d);
  if (!r.ok()) {
    for (const auto& v : r.violations)
      std::fprintf(stderr, "  %s\n", v.c_str());
  }
  CHECK(r.ok());
  CHECK(r.truncated);

  // And the truncation survives the file round-trip.
  const std::string path = "test_obs_trunc.json";
  CHECK(obs::write_chrome_trace(path, d));
  obs::TraceData loaded;
  CHECK(obs::load_chrome_trace(path, &loaded));
  CHECK(loaded.dropped.size() == 1 && loaded.dropped[0] > 0);
  const auto r2 = obs::check_trace(loaded);
  CHECK(r2.ok());
  CHECK(r2.truncated);
  std::remove(path.c_str());
}

void sampled_trace_skips_checks() {
  obs::TraceConfig cfg;
  cfg.sample_shift = 3;
  obs::TraceSink sink(1, cfg);
  core::MwLLSC<llsc::Dw128LLSC> obj(1, 2);
  obj.set_trace(&sink, 0);
  std::vector<std::uint64_t> buf(2);
  for (int i = 0; i < 100; ++i) {
    obj.ll(0, buf.data());
    buf[0] += 1;
    obj.sc(0, buf.data());
  }
  const obs::TraceData d = sink.collect();
  CHECK(d.total_events() > 0);
  const auto r = obs::check_trace(d);
  CHECK(r.sampled);
  CHECK(r.ok());  // a sampled stream proves nothing, violates nothing
}

/// The checker must reject what it claims to reject: synthetic traces with
/// a defensive jp retry, an I2 double-commit, a commit-less bank write, and
/// an over-budget apply.
void checker_catches_violations() {
  auto base = [] {
    obs::TraceData d;
    d.vars.push_back({0, 4, "jp w=4"});
    d.vars.push_back({1, 4, "retry w=4"});
    d.per_pid.resize(1);
    d.dropped.assign(1, 0);
    return d;
  };

  {  // defensive retry on a jp variable
    obs::TraceData d = base();
    d.per_pid[0] = {ev(obs::EventKind::kLlStart, 0, 0),
                    ev(obs::EventKind::kLlRetry, 0, 0),
                    ev(obs::EventKind::kLlFast, 0, 0)};
    const auto r = obs::check_trace(d);
    CHECK_EQ(r.violations.size(), 1u);
    CHECK(r.violations[0].find("defensive LL retry") != std::string::npos);
  }
  {  // the same retry on a retry-substrate variable is expected behavior
    obs::TraceData d = base();
    d.per_pid[0] = {ev(obs::EventKind::kLlStart, 0, 1),
                    ev(obs::EventKind::kLlRetry, 0, 1),
                    ev(obs::EventKind::kLlFast, 0, 1)};
    CHECK(obs::check_trace(d).ok());
  }
  {  // enough retries push a non-jp LL past 4W+12 — still no violation,
     // but a jp LL with the same shape would trip the bound; craft it via
     // a jp label and many retries... which already trips the retry rule,
     // so instead check the derived step accounting directly.
    CHECK_EQ(obs::ll_steps_of(4, 1, false), 8u);    // one round, W+4
    CHECK_EQ(obs::ll_steps_of(4, 1, true), 12u);    // rescue adds W
    CHECK(obs::ll_steps_of(4, 4, false) > 4 * 4 + 12);
  }
  {  // I2: two commits with no bank write between them
    obs::TraceData d = base();
    d.per_pid[0] = {ev(obs::EventKind::kScCommit, 0, 0),
                    ev(obs::EventKind::kScCommit, 0, 0),
                    ev(obs::EventKind::kBankWrite, 0, 0)};
    const auto r = obs::check_trace(d);
    CHECK_EQ(r.violations.size(), 1u);
    CHECK(r.violations[0].find("I2") != std::string::npos);
  }
  {  // I2: a bank write with no open commit
    obs::TraceData d = base();
    d.per_pid[0] = {ev(obs::EventKind::kScCommit, 0, 0),
                    ev(obs::EventKind::kBankWrite, 0, 0),
                    ev(obs::EventKind::kBankWrite, 0, 0)};
    const auto r = obs::check_trace(d);
    CHECK_EQ(r.violations.size(), 1u);
  }
  {  // a lock-style variable never emits bank writes: commits don't pair
    obs::TraceData d = base();
    d.vars[0].label = "lock w=4";
    d.per_pid[0] = {ev(obs::EventKind::kScCommit, 0, 0),
                    ev(obs::EventKind::kScCommit, 0, 0)};
    CHECK(obs::check_trace(d).ok());
  }
  {  // apps: an apply that took more than kMaxAttempts rounds
    obs::TraceData d = base();
    d.per_pid[0] = {ev(obs::EventKind::kApplyCommit, 0, 0, 1, 4)};
    const auto r = obs::check_trace(d);
    CHECK_EQ(r.violations.size(), 1u);
    CHECK(r.violations[0].find("help-all") != std::string::npos);
  }
  {  // truncated rings excuse orphan closes, full rings don't
    obs::TraceData d = base();
    d.per_pid[0] = {ev(obs::EventKind::kLlFast, 0, 0)};
    CHECK_EQ(obs::check_trace(d).violations.size(), 1u);
    d.dropped[0] = 5;
    CHECK(obs::check_trace(d).ok());
    CHECK(obs::check_trace(d).truncated);
  }
}

struct Counter {
  std::uint64_t v;
};
struct FetchInc {
  std::uint64_t operator()(Counter& c, const apps::OpDesc&) const {
    return c.v++;
  }
};

void apps_trace() {
  constexpr unsigned kThreads = 3;
  constexpr std::uint64_t kOps = 400;
  obs::TraceConfig cfg;
  cfg.capacity = 1u << 16;
  obs::TraceSink sink(kThreads, cfg);
  apps::WfUniversal<Counter, FetchInc> obj(kThreads, Counter{0});
  obj.set_trace(&sink, 0);

  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        obj.apply(t, apps::OpDesc{0, 0});
      }
    });
  }
  for (auto& th : pool) th.join();
  CHECK_EQ(obj.read(0).v, kThreads * kOps);

  const obs::TraceData d = sink.collect();
  const auto r = obs::check_trace(d);
  if (!r.ok()) {
    for (const auto& v : r.violations)
      std::fprintf(stderr, "  %s\n", v.c_str());
  }
  CHECK(r.ok());
  CHECK_EQ(r.applies_checked, kThreads * kOps);
  CHECK(r.lls_checked > 0);  // substrate events share the rings

  // Round-trip the apps trace too (announce/help_all/apply_commit are
  // instants; the loader must restore them for applies_checked to match).
  const std::string path = "test_obs_apps.json";
  CHECK(obs::write_chrome_trace(path, d));
  obs::TraceData loaded;
  CHECK(obs::load_chrome_trace(path, &loaded));
  const auto r2 = obs::check_trace(loaded);
  CHECK(r2.ok());
  CHECK_EQ(r2.applies_checked, r.applies_checked);
  std::remove(path.c_str());
}

void metrics_registry() {
  obs::MetricsRegistry reg;
  CHECK(reg.empty());

  core::OpStatsSnapshot s;
  s.ll_ops = 100;
  s.sc_ops = 50;
  s.sc_success = 25;
  s.helps_given = 10;
  reg.absorb("impl=\"jp\",w=\"4\"", s);

  const auto& all = reg.metrics();
  const auto it = all.find("mwllsc_sc_success_ratio{impl=\"jp\",w=\"4\"}");
  CHECK(it != all.end());
  CHECK(it->second.type == obs::MetricsRegistry::Type::kGauge);
  CHECK(it->second.value == 0.5);
  CHECK(all.count("mwllsc_sc_ops_total{impl=\"jp\",w=\"4\"}") == 1);
  CHECK(all.at("mwllsc_helps_per_op{impl=\"jp\",w=\"4\"}").value == 0.1);
  CHECK(all.at("mwllsc_contention_estimate{impl=\"jp\",w=\"4\"}").value ==
        0.5);

  util::LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  reg.absorb_latency("impl=\"jp\"", h);

  // split_key round-trips labeled and bare names.
  {
    const auto [base, labels] = obs::MetricsRegistry::split_key(
        "mwllsc_sc_ops_total{impl=\"jp\"}");
    CHECK(base == "mwllsc_sc_ops_total");
    CHECK(labels == "impl=\"jp\"");
    const auto [b2, l2] = obs::MetricsRegistry::split_key("bare");
    CHECK(b2 == "bare");
    CHECK(l2.empty());
  }

  const std::string prom = "test_obs_metrics.prom";
  const std::string json = "test_obs_metrics.json";
  CHECK(obs::write_prometheus(prom, reg));
  CHECK(obs::write_metrics_json(json, reg));

  const std::string ptext = slurp(prom);
  CHECK(ptext.find("# TYPE mwllsc_sc_success_ratio gauge") !=
        std::string::npos);
  CHECK(ptext.find("# TYPE mwllsc_sc_ops_total counter") !=
        std::string::npos);
  CHECK(ptext.find("mwllsc_sc_ops_total{impl=\"jp\",w=\"4\"} 50") !=
        std::string::npos);
  CHECK(ptext.find("# TYPE mwllsc_op_latency_ns summary") !=
        std::string::npos);
  CHECK(ptext.find("quantile=\"0.99\"") != std::string::npos);
  CHECK(ptext.find("mwllsc_op_latency_ns_count{impl=\"jp\"} 1000") !=
        std::string::npos);

  const std::string jtext = slurp(json);
  CHECK(jtext.find("\"schema_version\"") != std::string::npos);
  CHECK(jtext.find("mwllsc_sc_success_ratio") != std::string::npos);
  CHECK(jtext.find("\"p99\"") != std::string::npos);
  std::remove(prom.c_str());
  std::remove(json.c_str());
}

void trace_derived_metrics(const obs::TraceData& d) {
  obs::MetricsRegistry reg;
  reg.absorb_trace(d);
  const auto& all = reg.metrics();
  CHECK(all.count("mwllsc_trace_events_total{kind=\"ll_start\"}") == 1);
  CHECK(all.count("mwllsc_trace_events_total{kind=\"sc_commit\"}") == 1);
  const auto it = all.find("mwllsc_traced_lls_total{var=\"0\",label=\"jp\"}");
  CHECK(it != all.end());
  CHECK(it->second.value > 0);
  CHECK(all.count("mwllsc_ll_mean_ns{var=\"0\",label=\"jp\"}") == 1);
  CHECK(all.count("mwllsc_traced_help_rate{var=\"0\",label=\"jp\"}") == 1);
}

}  // namespace

int main() {
  ring_wraparound();
  ring_sampling();
  handle_binding();
  const obs::TraceData d = traced_protocol_mt();
  export_roundtrip(d);
  trace_derived_metrics(d);
  truncation_tolerated();
  sampled_trace_skips_checks();
  checker_catches_violations();
  apps_trace();
  metrics_registry();
  std::printf("test_obs: OK\n");
  return 0;
}
