// The compiled-out configuration of obs/ (no MWLLSC_TRACE): the
// TraceHandle the protocol objects embed must be an empty struct — zero
// per-object state, every emit a no-op the optimizer deletes — while the
// cold half of the layer (sink, rings, checker, exporters, metrics) still
// compiles and runs, so tools like trace_check build in every
// configuration. tests/CMakeLists.txt compiles this file without the
// define even when the rest of the build has tracing on.
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "core/mwllsc.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_check.hpp"

using namespace mwllsc;

#if !defined(MWLLSC_TRACE)
// The zero-overhead claim, enforced at compile time: no sink pointer, no
// var id, nothing. (trace.hpp also static_asserts this; asserting here too
// keeps the test meaningful if that ever moves.)
static_assert(std::is_empty_v<obs::TraceHandle>,
              "trace-off builds must carry no per-object trace state");
#endif

int main() {
  // The handle API is callable either way; compiled out it does nothing.
  {
    obs::TraceSink sink(1);
    obs::TraceHandle h;
    h.bind(&sink, 0);
    h.emit(obs::EventKind::kLlStart, 0, 1, 2);
#if !defined(MWLLSC_TRACE)
    CHECK(!h.bound());
    CHECK_EQ(sink.collect().total_events(), 0u);
#endif
  }

  // The instrumented protocol runs unchanged with tracing compiled out —
  // set_trace is accepted and ignored.
  {
    obs::TraceSink sink(1);
    core::MwLLSC<llsc::Dw128LLSC> obj(1, 4);
    obj.set_trace(&sink, 0);
    std::vector<std::uint64_t> buf(4);
    for (int i = 0; i < 100; ++i) {
      obj.ll(0, buf.data());
      buf[0] += 1;
      CHECK(obj.sc(0, buf.data()));
    }
    CHECK_EQ(buf[0], 100u);
#if !defined(MWLLSC_TRACE)
    CHECK_EQ(sink.collect().total_events(), 0u);
#endif
  }

  // The cold half is always available: rings, checker, exporters.
  {
    obs::TraceRing ring;
    ring.init(8, 0);
    ring.record(obs::EventKind::kScCommit, 0, 0, 1, 0);
    CHECK_EQ(ring.recorded(), 1u);

    obs::TraceData d;
    const auto r = obs::check_trace(d);
    CHECK(r.ok());
    CHECK_EQ(r.lls_checked, 0u);

    obs::MetricsRegistry reg;
    reg.set_counter("x_total", 3);
    const std::string path = "test_obs_off_metrics.prom";
    CHECK(obs::write_prometheus(path, reg));
    std::remove(path.c_str());
  }

  std::printf("test_obs_off: OK\n");
  return 0;
}
