// The deterministic simulator as a ctest gate:
//   (a) bounded-exhaustive verification — every N=2, W=2 schedule with at
//       most 2 preemptions passes I1, I2 and the sequential-spec oracle
//       (the CHESS-style small-configuration check);
//   (b) the wait-freedom separation — the anti-adversarial scheduler
//       starves the retry strawman's victim LL without bound, while jp's
//       worst LL stays under the paper's 4W+12 bound (and am's under its
//       O(N·W) bound), flat in however long the adversary runs.
// The JpInvariantChecker additionally enforces, on every run here, that
// no LL exceeds 4W+12 steps and that the defensive retry arm never fires.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "sim/harness.hpp"
#include "sim/invariants.hpp"
#include "sim/sim_am.hpp"
#include "sim/sim_jp.hpp"
#include "sim/sim_retry.hpp"
#include "test_check.hpp"

using namespace mwllsc;
using namespace mwllsc::sim;

namespace {

std::vector<std::uint64_t> init(std::uint32_t w) {
  return std::vector<std::uint64_t>(w, 1);
}

// (a) Exhaustive small-configuration check. Two processes, two words, two
// LL..SC rounds each (with VLs mixed in), every schedule with <=2
// preemptions: the search must complete untruncated with every invariant
// green, and must actually have explored a nontrivial schedule space.
void exhaustive_small_config() {
  WorkloadConfig cfg;
  cfg.ops_per_proc = 2;
  cfg.vl_percent = 50;
  cfg.seed = 3;
  SimWorkload<SimJpSystem> wl(SimJpSystem(2, 2, init(2)), cfg);
  JpInvariantChecker chk(wl.system());
  const EnumerateResult r = enumerate_preemption_bounded(wl, chk, 2, 2000000);
  if (!r.ok) std::fprintf(stderr, "CHESS search failed: %s\n", r.error.c_str());
  CHECK(r.ok);
  CHECK(!r.truncated);
  CHECK(r.schedules_explored > 100);
  CHECK(r.total_steps > r.schedules_explored);
  // Theorem 1's bound, exhaustively: no schedule in the search produced an
  // LL over 4W+12 steps (the checker would also have failed the search).
  CHECK(r.max_ll_steps > 0);
  CHECK(r.max_ll_steps <= SimJpSystem::ll_step_bound(2, 2));
}

// Random schedules with the full oracle, as a wider (non-exhaustive) net.
void random_oracle_sweep() {
  for (std::uint64_t s = 1; s <= 5; ++s) {
    WorkloadConfig cfg;
    cfg.ops_per_proc = 200;
    cfg.vl_percent = 20;
    cfg.seed = s;
    SimWorkload<SimJpSystem> wl(SimJpSystem(3, 3, init(3)), cfg);
    JpInvariantChecker chk(wl.system());
    const RunResult r = run_random(wl, chk, s * 101);
    if (!r.ok) std::fprintf(stderr, "random run failed: %s\n", r.error.c_str());
    CHECK(r.ok);
    CHECK(r.max_ll_steps <= SimJpSystem::ll_step_bound(3, 3));
    CHECK_EQ(wl.system().ll_retries_total(), 0u);
  }
}

struct AdvOut {
  std::uint32_t max_ll;         // worst completed LL, steps
  std::uint32_t steps_in_flight;  // the victim's stuck op at cutoff
  std::uint64_t helps_given;
};

std::uint64_t helps_of(const SimJpSystem& s) { return s.helps_given_total(); }
std::uint64_t helps_of(const SimAmSystem& s) { return s.helps_given_total(); }
std::uint64_t helps_of(const SimRetrySystem&) { return 0; }

template <class System>
AdvOut adversarial(std::uint32_t n, std::uint32_t w,
                   std::uint64_t max_steps) {
  WorkloadConfig cfg;
  cfg.ops_per_proc = 1000000;  // effectively unbounded within max_steps
  cfg.vl_percent = 0;
  SimWorkload<System> wl(System(n, w, init(w)), cfg);
  auto chk = make_checker(wl.system());
  const RunResult r = run_adversarial_anti(wl, chk, /*victim=*/0, w + 8,
                                           max_steps);
  if (!r.ok) {
    std::fprintf(stderr, "adversarial run failed: %s\n", r.error.c_str());
  }
  CHECK(r.ok);
  return {wl.max_ll_steps(), wl.system().steps_in_flight(0),
          helps_of(wl.system())};
}

// (b) The separation Theorem 1 is about, made observable.
void adversary_separation() {
  const std::uint32_t n = 3, w = 4;
  const std::uint32_t bound = SimJpSystem::ll_step_bound(n, w);

  // jp's bound is the paper's 4W+12 — independent of N.
  const AdvOut jp_short = adversarial<SimJpSystem>(n, w, 30000);
  const AdvOut jp_long = adversarial<SimJpSystem>(n, w, 90000);
  // Wait-free: bounded, flat in the adversary's run length, and the
  // rescue actually went through the help path.
  CHECK(jp_short.max_ll <= bound);
  CHECK(jp_long.max_ll <= bound);
  CHECK(jp_long.steps_in_flight <= bound);
  CHECK(jp_long.helps_given > 0);

  const AdvOut am_long = adversarial<SimAmSystem>(n, w, 90000);
  CHECK(am_long.max_ll <= SimAmSystem::ll_step_bound(n, w));
  CHECK(am_long.helps_given > 0);

  // Lock-free only: the victim's LL never completes, and its in-flight
  // step count keeps growing with the adversary's patience — already far
  // beyond anything the wait-free bound permits.
  const AdvOut rt_short = adversarial<SimRetrySystem>(n, w, 30000);
  const AdvOut rt_long = adversarial<SimRetrySystem>(n, w, 90000);
  CHECK(rt_short.steps_in_flight > bound);
  CHECK(rt_long.steps_in_flight > rt_short.steps_in_flight);
}

}  // namespace

int main() {
  exhaustive_small_config();
  random_oracle_sweep();
  adversary_separation();
  std::printf("test_sim: OK\n");
  return 0;
}
