// Crash-stop fault injection in the deterministic simulator:
//   (a) bounded-exhaustive search with a crash budget — every N=2, W=2
//       schedule with <=2 preemptions AND a crash-stop of the currently
//       scheduled process injected at every protocol step (plus a
//       2-crash / N=3 variant) keeps I1, I2, the 4W+12 bound and the
//       sequential-spec oracle green for the live processes;
//   (b) directed choreographies for the two nastiest crash points — a
//       helper dying between posting its donation and its exchange CAS,
//       and a victim dying between announce and withdraw — asserting that
//       reclamation restores the exact buffer-ownership census (I1) and
//       completes the dead process's pending bank write (I2);
//   (c) replay round-trip — a recorded crash-churn schedule re-executes
//       token-for-token to the same step count;
//   (d) every invariant-violation message embeds the scheduler seed and
//       schedule prefix needed to reproduce it (--seed / --replay).
// Set MWLLSC_SIM_SOAK=1 for a longer churn soak (the CI fault-injection
// job does, under ASan and TSan).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/harness.hpp"
#include "sim/invariants.hpp"
#include "sim/sim_jp.hpp"
#include "test_check.hpp"

using namespace mwllsc;
using namespace mwllsc::sim;

namespace {

std::vector<std::uint64_t> init(std::uint32_t w) {
  return std::vector<std::uint64_t>(w, 1);
}

// (a) Exhaustive small configurations with a crash budget. The enumerator
// exploits that a crash is protocol-inert (a frozen process changes no
// shared word), so injecting the crash right before the victim's next
// step covers crash-at-every-protocol-step without redundant placements.
void exhaustive_with_crashes() {
  struct Shape {
    std::uint32_t n, w, ops, preempts, crashes;
  };
  const Shape shapes[] = {
      {2, 2, 2, 2, 1},  // the ISSUE's acceptance configuration
      {2, 2, 2, 1, 2},  // both processes can die
      {3, 2, 1, 1, 2},  // three procs, two corpses, survivors finish
  };
  for (const Shape& s : shapes) {
    WorkloadConfig cfg;
    cfg.ops_per_proc = s.ops;
    cfg.vl_percent = 50;
    cfg.seed = 3;
    SimWorkload<SimJpSystem> wl(SimJpSystem(s.n, s.w, init(s.w)), cfg);
    JpInvariantChecker chk(wl.system());
    const EnumerateResult r =
        enumerate_preemption_bounded(wl, chk, s.preempts, 4000000, s.crashes);
    if (!r.ok) {
      std::fprintf(stderr, "crash CHESS (n=%u w=%u p=%u c=%u) failed: %s\n",
                    s.n, s.w, s.preempts, s.crashes, r.error.c_str());
    }
    CHECK(r.ok);
    CHECK(!r.truncated);
    CHECK(r.schedules_explored > 100);
    // Live processes stayed wait-free in every schedule: the checker
    // enforces 4W+12 + the oracle per completed op, and completed ops
    // exist (crashes never claim every process before its first SC).
    CHECK(r.max_ll_steps > 0);
    CHECK(r.max_ll_steps <= SimJpSystem::ll_step_bound(s.n, s.w));
  }

  // The crash budget must actually enlarge the explored space over the
  // crash-free search of the same shape.
  WorkloadConfig cfg;
  cfg.ops_per_proc = 2;
  cfg.vl_percent = 50;
  cfg.seed = 3;
  SimWorkload<SimJpSystem> wl0(SimJpSystem(2, 2, init(2)), cfg);
  JpInvariantChecker chk0(wl0.system());
  const EnumerateResult base =
      enumerate_preemption_bounded(wl0, chk0, 2, 4000000, 0);
  SimWorkload<SimJpSystem> wl1(SimJpSystem(2, 2, init(2)), cfg);
  JpInvariantChecker chk1(wl1.system());
  const EnumerateResult crashy =
      enumerate_preemption_bounded(wl1, chk1, 2, 4000000, 1);
  CHECK(base.ok && crashy.ok);
  CHECK(crashy.schedules_explored > base.schedules_explored);
}

// Steps p until `cond` holds, with a hard step budget. Returns false if
// the budget ran out (callers CHECK it).
template <class Cond>
bool step_until(SimWorkload<SimJpSystem>& wl, JpInvariantChecker& chk,
                std::uint32_t p, Cond cond, std::uint32_t budget = 5000) {
  while (budget--) {
    if (cond()) return true;
    if (wl.proc_done(p)) return false;
    wl.step(p, chk);
    if (!chk.ok()) return false;
  }
  return false;
}

// Runs every runnable process round-robin to completion.
void drain(SimWorkload<SimJpSystem>& wl, JpInvariantChecker& chk) {
  std::uint32_t guard = 200000;
  while (!wl.done() && guard--) {
    for (std::uint32_t p = 0; p < wl.system().n(); ++p) {
      if (!wl.proc_done(p)) {
        wl.step(p, chk);
        break;
      }
    }
  }
  CHECK(wl.done());
}

// (b1) Helper dies between donating a buffer and its exchange CAS. The
// victim must adopt the orphaned donation and finish inside 4W+12; the
// reclaimer then recycles the corpse (completing its pending bank write if
// the X SC had already landed) and I1's census must come back exact — the
// checker re-verifies it at the crash step and at the reclaim step.
void crash_helper_after_donation() {
  WorkloadConfig cfg;
  cfg.ops_per_proc = 6;
  cfg.vl_percent = 0;
  cfg.seed = 1;
  SimWorkload<SimJpSystem> wl(SimJpSystem(2, 2, init(2)), cfg);
  JpInvariantChecker chk(wl.system());
  SimJpSystem& sys = wl.system();
  const std::uint32_t victim = 0, helper = 1;

  // Victim: into its LL far enough to have announced.
  CHECK(step_until(wl, chk, victim, [&] { return sys.announce_posted(victim); }));
  // Helper: run until its SC posts a donation into the victim's slot.
  CHECK(step_until(wl, chk, helper, [&] { return sys.donation_posted(victim); }));
  // The helper now dies with its SC unfinished (donation posted, exchange
  // CAS and/or ring retirement still pending).
  wl.crash(helper, chk);
  CHECK(chk.ok());

  // The victim's withdraw finds HELPED and adopts the corpse's donation.
  const std::uint64_t lls_before = wl.completed_lls();
  CHECK(step_until(wl, chk, victim, [&] {
    return wl.completed_lls() > lls_before;
  }));
  CHECK(chk.ok());
  CHECK(wl.max_ll_steps() <= SimJpSystem::ll_step_bound(2, 2));

  // Reclaim the corpse: pending bank write completed, census restored
  // (the checker runs I1/I2 at the reclaim step and would fail here).
  wl.reclaim(helper, chk);
  CHECK(chk.ok());
  CHECK_EQ(sys.crash_reclaims_total(), 1u);

  drain(wl, chk);
  CHECK(chk.ok());
  CHECK_EQ(sys.ll_retries_total(), 0u);
}

// (b2) Victim dies between announce and withdraw. Helpers keep donating
// into the corpse's WAITING slot; every donated buffer must stay exactly
// once-owned (I1) while the corpse holds it, and reclamation must absorb
// the orphaned announce/donation so the slot is clean for reuse.
void crash_victim_mid_announce() {
  WorkloadConfig cfg;
  cfg.ops_per_proc = 8;
  cfg.vl_percent = 0;
  cfg.seed = 2;
  SimWorkload<SimJpSystem> wl(SimJpSystem(2, 2, init(2)), cfg);
  JpInvariantChecker chk(wl.system());
  SimJpSystem& sys = wl.system();
  const std::uint32_t victim = 0, helper = 1;

  CHECK(step_until(wl, chk, victim, [&] { return sys.announce_posted(victim); }));
  wl.crash(victim, chk);
  CHECK(chk.ok());

  // The helper churns through its whole script against the corpse —
  // donations to the dead announce land and sit there; the helper itself
  // must stay wait-free the entire time.
  CHECK(step_until(wl, chk, helper, [&] { return wl.proc_done(helper); },
                   50000));
  CHECK(chk.ok());
  CHECK(wl.max_ll_steps() <= SimJpSystem::ll_step_bound(2, 2));

  // Reclaim absorbs whatever the slot holds (WAITING withdrawn or HELPED
  // adopted) and restores the census; the victim's stranded script then
  // reruns its interrupted round from scratch.
  wl.reclaim(victim, chk);
  CHECK(chk.ok());
  CHECK_EQ(sys.crash_reclaims_total(), 1u);
  drain(wl, chk);
  CHECK(chk.ok());
}

// (c) A recorded crash-churn schedule replays token-for-token.
void replay_roundtrip() {
  WorkloadConfig cfg;
  cfg.ops_per_proc = 40;
  cfg.seed = 5;
  SimWorkload<SimJpSystem> wl(SimJpSystem(3, 3, init(3)), cfg);
  JpInvariantChecker chk(wl.system());
  ChurnConfig churn;
  churn.sched_seed = 9;
  churn.crash_period = 31;
  churn.reclaim_delay = 17;
  const RunResult first = run_crash_churn(wl, chk, churn);
  CHECK(first.ok);
  CHECK(wl.system().crashes_total() > 0);
  const std::string schedule =
      wl.schedule_string(/*max_chars=*/1u << 24);  // untruncated

  SimWorkload<SimJpSystem> wl2(SimJpSystem(3, 3, init(3)), cfg);
  JpInvariantChecker chk2(wl2.system());
  const RunResult again = run_replay(wl2, chk2, schedule);
  if (!again.ok) {
    std::fprintf(stderr, "replay failed: %s\n", again.error.c_str());
  }
  CHECK(again.ok);
  CHECK_EQ(again.total_steps, first.total_steps);
  CHECK_EQ(wl2.system().crashes_total(), wl.system().crashes_total());
  CHECK_EQ(wl2.system().crash_reclaims_total(),
           wl.system().crash_reclaims_total());
}

// (d) Violations reproduce: a synthetic checker failure mid-run must come
// back annotated with the scheduler seed and the exact schedule prefix.
struct FailAfter {
  std::uint64_t budget;
  bool failed = false;
  std::string err = "synthetic failure (test)";
  template <class System>
  void on_step(const System&) {
    if (budget == 0) failed = true;
    else --budget;
  }
  template <class System>
  void on_op(const System&, const OpRecord&) {}
  bool ok() const { return !failed; }
  const std::string& error() const { return err; }
};

void violations_carry_repro() {
  {
    WorkloadConfig cfg;
    cfg.ops_per_proc = 20;
    SimWorkload<SimJpSystem> wl(SimJpSystem(2, 2, init(2)), cfg);
    FailAfter chk{40};
    const RunResult r = run_random(wl, chk, 1234);
    CHECK(!r.ok);
    CHECK(r.error.find("sched-seed=1234") != std::string::npos);
    CHECK(r.error.find("schedule=") != std::string::npos);
  }
  {
    WorkloadConfig cfg;
    cfg.ops_per_proc = 20;
    SimWorkload<SimJpSystem> wl(SimJpSystem(2, 2, init(2)), cfg);
    FailAfter chk{40};
    ChurnConfig churn;
    churn.sched_seed = 77;
    const RunResult r = run_crash_churn(wl, chk, churn);
    CHECK(!r.ok);
    CHECK(r.error.find("churn-seed=77") != std::string::npos);
    CHECK(r.error.find("schedule=") != std::string::npos);
  }
}

// Churn soak: randomized crash/reclaim cycling with the full checker.
// MWLLSC_SIM_SOAK=1 (the CI fault-injection job) widens it.
void churn_soak() {
  const bool soak = []() {
    const char* e = std::getenv("MWLLSC_SIM_SOAK");
    return e && e[0] == '1';
  }();
  const std::uint64_t seeds = soak ? 12 : 3;
  const std::uint32_t ops = soak ? 3000 : 400;
  for (std::uint64_t s = 1; s <= seeds; ++s) {
    WorkloadConfig cfg;
    cfg.ops_per_proc = ops;
    cfg.vl_percent = 15;
    cfg.seed = s;
    SimWorkload<SimJpSystem> wl(SimJpSystem(4, 3, init(3)), cfg);
    JpInvariantChecker chk(wl.system());
    ChurnConfig churn;
    churn.sched_seed = s * 7919;
    churn.crash_period = 41 + s;
    churn.reclaim_delay = 13 + s;
    churn.max_concurrent_crashes = (s % 2) ? 1 : 2;
    const RunResult r = run_crash_churn(wl, chk, churn);
    if (!r.ok) {
      std::fprintf(stderr, "churn soak seed %llu failed: %s\n",
                   static_cast<unsigned long long>(s), r.error.c_str());
    }
    CHECK(r.ok);
    CHECK(wl.system().crashes_total() > 0);
    CHECK_EQ(wl.system().crashes_total(),
             wl.system().crash_reclaims_total());
    CHECK(r.max_ll_steps <= SimJpSystem::ll_step_bound(4, 3));
    CHECK_EQ(wl.system().ll_retries_total(), 0u);
  }
}

}  // namespace

int main() {
  exhaustive_with_crashes();
  crash_helper_after_donation();
  crash_victim_mid_announce();
  replay_roundtrip();
  violations_carry_repro();
  churn_soak();
  std::printf("test_sim_crash: OK\n");
  return 0;
}
