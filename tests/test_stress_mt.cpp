// Multi-thread linearizability stress, run against all four substrates:
// T threads each perform K successful LL;inc;SC read-modify-writes on one
// shared W-word object. Every snapshot an LL returns must be internally
// consistent (all words carry the same logical count — a torn or stale
// read would break that), and the final value must be exactly T*K: no lost
// or duplicated increments.
//
// tests/CMakeLists.txt compiles this test WITH MWLLSC_TRACE, so the same
// run doubles as the data-race check for the tracing hot path (TSan job):
// every substrate stresses with live per-process rings, and the collected
// trace replays through the offline checker afterwards.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "test_check.hpp"

using namespace mwllsc;

namespace {

constexpr unsigned kThreads = 4;
constexpr std::uint64_t kIncrements = 15000;
constexpr std::uint32_t kW = 5;

void stress_for(const core::MwLLSCFactory& f) {
  std::printf("  %s...\n", f.name.c_str());
  auto obj = f.make(kThreads, kW);
  obs::TraceSink sink(kThreads);
  obj->set_trace(&sink, 0);
  util::SpinBarrier start(kThreads);
  std::vector<std::thread> pool;
  std::atomic<bool> failed{false};
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      std::vector<std::uint64_t> v(kW);
      start.arrive_and_wait();
      for (std::uint64_t i = 0; i < kIncrements; ++i) {
        for (;;) {
          obj->ll(t, v.data());
          // Internal consistency: every word equals word 0. An update
          // writes count to all words, so any torn snapshot trips this.
          for (std::uint32_t k = 1; k < kW; ++k) {
            if (v[k] != v[0]) {
              failed.store(true);
              return;
            }
          }
          const std::uint64_t next = v[0] + 1;
          for (std::uint32_t k = 0; k < kW; ++k) v[k] = next;
          if (obj->sc(t, v.data())) break;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  CHECK(!failed.load());

  std::vector<std::uint64_t> fin(kW);
  obj->ll(0, fin.data());
  for (std::uint32_t k = 0; k < kW; ++k) {
    CHECK_EQ(fin[k], kThreads * kIncrements);
  }

  const auto s = obj->stats();
  CHECK_EQ(s.sc_success, kThreads * kIncrements);
  CHECK(s.sc_ops >= s.sc_success);

#if defined(MWLLSC_TRACE)
  // Replay the (ring-truncated) trace through the offline checker: the
  // 4W+12 bound and I2 must hold over whatever suffix survived.
  const auto r = obs::check_trace(sink.collect());
  if (!r.ok()) {
    for (const auto& v : r.violations)
      std::fprintf(stderr, "    trace: %s\n", v.c_str());
  }
  CHECK(r.ok());
  CHECK(r.lls_checked > 0);
#endif
  std::printf("    sc %llu/%llu, helped LLs %llu, rescues %llu, "
              "help installs %llu\n",
              static_cast<unsigned long long>(s.sc_success),
              static_cast<unsigned long long>(s.sc_ops),
              static_cast<unsigned long long>(s.ll_helped),
              static_cast<unsigned long long>(s.ll_used_helped_value),
              static_cast<unsigned long long>(s.helps_given));
}

// Readers validating against concurrent writers: a pure reader must always
// see consistent snapshots while writers hammer the object.
void reader_writer_for(const core::MwLLSCFactory& f) {
  auto obj = f.make(3, kW);
  util::TimedRun run;
  std::atomic<bool> failed{false};
  run.run_for(3, 100'000'000, [&](unsigned t) {
    std::vector<std::uint64_t> v(kW);
    if (t == 0) {  // reader
      while (!run.should_stop()) {
        obj->ll(0, v.data());
        for (std::uint32_t k = 1; k < kW; ++k) {
          if (v[k] != v[0]) {
            failed.store(true);
            return;
          }
        }
      }
    } else {  // writers
      while (!run.should_stop()) {
        obj->ll(t, v.data());
        const std::uint64_t next = v[0] + 1;
        for (std::uint32_t k = 0; k < kW; ++k) v[k] = next;
        obj->sc(t, v.data());
      }
    }
  });
  CHECK(!failed.load());
}

}  // namespace

int main() {
  std::printf("test_stress_mt: %u threads x %llu increments, W=%u\n",
              kThreads, static_cast<unsigned long long>(kIncrements), kW);
  for (const auto& f : bench::all_factories()) {
    stress_for(f);
    reader_writer_for(f);
  }
  std::printf("test_stress_mt: OK\n");
  return 0;
}
