// Unit checks for the util layer: PRNG determinism and ranges, histogram
// percentiles, table formatting, the log-log exponent fit, and the timed
// runner's start/stop discipline.
#include <cmath>
#include <cstdint>
#include <vector>

#include "test_check.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/threads.hpp"
#include "util/timing.hpp"

using namespace mwllsc;

int main() {
  // SplitMix64 is deterministic and matches the reference first outputs
  // for seed 0 (Vigna's splitmix64.c).
  {
    util::SplitMix64 a(0);
    CHECK_EQ(a.next(), 0xe220a8397b1dcdafULL);
    CHECK_EQ(a.next(), 0x6e789e6aa1b965f4ULL);
    util::SplitMix64 b(42), c(42);
    for (int i = 0; i < 100; ++i) CHECK_EQ(b.next(), c.next());
  }

  // Xoshiro: deterministic per seed, next_below stays in range and hits
  // every residue eventually, chance() respects 0 and certainty.
  {
    util::Xoshiro256 g(7), h(7);
    for (int i = 0; i < 100; ++i) CHECK_EQ(g.next(), h.next());
    bool seen[10] = {};
    for (int i = 0; i < 10000; ++i) {
      const std::uint32_t v = g.next_below(10);
      CHECK(v < 10);
      seen[v] = true;
    }
    for (bool s : seen) CHECK(s);
    for (int i = 0; i < 100; ++i) CHECK(!g.chance(0, 10));
    for (int i = 0; i < 100; ++i) CHECK(g.chance(10, 10));
  }

  // Histogram: percentiles are ordered and max is exact.
  {
    util::LatencyHistogram hist;
    for (std::uint64_t v = 1; v <= 1000; ++v) hist.record(v);
    CHECK_EQ(hist.count(), 1000u);
    CHECK_EQ(hist.max(), 1000u);
    const auto p50 = hist.percentile(0.50);
    const auto p99 = hist.percentile(0.99);
    CHECK(p50 <= p99);
    CHECK(p99 <= hist.max());
    CHECK(p50 >= 256 && p50 <= 512);  // bucket lower bound of ~500

    util::LatencyHistogram other;
    other.record(1 << 20);
    hist.merge(other);
    CHECK_EQ(hist.count(), 1001u);
    CHECK_EQ(hist.max(), static_cast<std::uint64_t>(1 << 20));
  }

  // Interpolated percentiles, pinned. Uniform 1..1000: the true p50 is
  // ~500; the bucket lower bound alone would report 256. The interpolation
  // places rank 499 at fraction (499-255+0.5)/256 of bucket [256, 512).
  {
    util::LatencyHistogram hist;
    for (std::uint64_t v = 1; v <= 1000; ++v) hist.record(v);
    CHECK_EQ(hist.percentile(0.50), 500u);
    CHECK_EQ(hist.percentile(0.99), 1000u);  // clamped to the observed max
    CHECK_EQ(hist.percentile(1.0), 1000u);
    CHECK_EQ(hist.percentile(0.0), 1u);
  }

  // Bimodal 900x100ns + 100x10000ns: p50 sits in the low mode, p95 in the
  // high mode (clamped to max — 10000 lands mid-bucket in [8192, 16384)).
  {
    util::LatencyHistogram hist;
    for (int i = 0; i < 900; ++i) hist.record(100);
    for (int i = 0; i < 100; ++i) hist.record(10000);
    CHECK_EQ(hist.percentile(0.50), 99u);
    CHECK_EQ(hist.percentile(0.95), 10000u);
    util::LatencyHistogram empty;
    CHECK_EQ(empty.percentile(0.5), 0u);
  }

  // fitted_exponent recovers the slope of a power law.
  {
    std::vector<double> xs, ys;
    for (double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
      xs.push_back(x);
      ys.push_back(3.0 * x * x);
    }
    const double k = util::fitted_exponent(xs, ys);
    CHECK(std::fabs(k - 2.0) < 1e-9);
  }

  // Table printing with padded columns doesn't crash and formats numbers.
  {
    CHECK(util::TablePrinter::num(std::size_t{42}) == "42");
    CHECK(util::TablePrinter::num(3.14159, 2) == "3.14");
    util::TablePrinter t({"a", "long-header", "c"});
    t.add_row({"1", "2", "3"});
    t.add_row({"wide-cell", "4"});
    t.print();
  }

  // TimedRun: all threads run, poll the flag, and stop near the deadline.
  {
    util::TimedRun run;
    std::atomic<std::uint64_t> iters{0};
    const std::uint64_t t0 = util::now_ns();
    run.run_for(3, 50'000'000, [&](unsigned) {
      std::uint64_t mine = 0;
      while (!run.should_stop()) ++mine;
      iters.fetch_add(mine);
    });
    const std::uint64_t elapsed = util::now_ns() - t0;
    CHECK(iters.load() > 0);
    CHECK(elapsed >= 50'000'000);
    CHECK(elapsed < 30'000'000'000ULL);  // generous: loaded CI machines
  }

  // Stopwatch advances.
  {
    util::Stopwatch sw;
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
    CHECK(sw.elapsed_ns() > 0);
    CHECK(sw.elapsed_s() >= 0.0);
  }

  std::printf("test_util: OK\n");
  return 0;
}
