// mwllsc_lint — the repo's memory-ordering discipline, mechanically
// checked (DESIGN.md §9). Tokenizes the given headers/sources, models
// every std::atomic declaration and access site, and enforces rules
// R1–R5. Exits 0 when clean, 1 on findings, 2 on usage/IO errors — the
// `lint` CMake target and the static-analysis CI job gate on that.
//
//   mwllsc_lint [--json <path|->] [--quiet] [--rules] <file-or-dir>...
//
//   --json    also write the machine-readable report (use - for stdout)
//   --quiet   suppress the human findings (summary + exit code only)
//   --rules   print the ruleset and exit

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/model.hpp"
#include "lint/report.hpp"
#include "lint/rules.hpp"
#include "lint/source.hpp"

namespace fs = std::filesystem;

namespace {

const char kRules[] =
    "mwllsc_lint ruleset (DESIGN.md §9):\n"
    "  R1  every atomic access names an explicit std::memory_order\n"
    "      (no defaulted seq_cst, no ++/--/=/+= operator sugar)\n"
    "  R2  seq_cst only under an in-source ordering contract\n"
    "      \"mwllsc-ordering: seq_cst(<reason>)\"; stale contracts are\n"
    "      findings too\n"
    "  R3  obs/ trace-ring head/slot stores are relaxed only\n"
    "      (single-writer rings; readers synchronize via join)\n"
    "  R4  no volatile, __sync_*/__atomic_* builtins, or inline asm\n"
    "  R5  shared atomic fields are cache-line padded (alignas on the\n"
    "      field or enclosing struct) or \"mwllsc-pad: exempt(<reason>)\"\n"
    "suppress a finding with \"mwllsc-lint-suppress(Rn: <reason>)\" on or\n"
    "just above its line\n";

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".cpp" ||
         ext == ".cc" || ext == ".cxx";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quiet = false;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--rules") {
      std::fputs(kRules, stdout);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stdout,
                   "usage: mwllsc_lint [--json <path|->] [--quiet] "
                   "[--rules] <file-or-dir>...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mwllsc_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: mwllsc_lint [--json <path|->] [--quiet] "
                 "[--rules] <file-or-dir>...\n");
    return 2;
  }

  // Expand directories; sort for deterministic output across platforms.
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "mwllsc_lint: cannot walk %s: %s\n",
                     root.c_str(), ec.message().c_str());
        return 2;
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "mwllsc_lint: no such file or directory: %s\n",
                   root.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  mwllsc::lint::LintResult result;
  for (const std::string& path : files) {
    mwllsc::lint::SourceFile src = mwllsc::lint::load_file(path);
    if (!src.ok) {
      std::fprintf(stderr, "mwllsc_lint: %s\n", src.error.c_str());
      return 2;
    }
    mwllsc::lint::FileModel model =
        mwllsc::lint::build_model(std::move(src));
    mwllsc::lint::run_rules(model, &result);
  }

  if (!quiet) {
    mwllsc::lint::print_findings(result, stdout);
  }
  if (!json_path.empty()) {
    std::string err;
    if (!mwllsc::lint::write_report_json(json_path, result, &err)) {
      std::fprintf(stderr, "mwllsc_lint: %s\n", err.c_str());
      return 2;
    }
  }
  return result.findings.empty() ? 0 : 1;
}
