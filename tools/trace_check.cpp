// Offline trace checker: replays an exported Chrome-trace JSON (written by
// any bench's --trace flag) and re-verifies the protocol's observable
// guarantees from events alone — the 4W+12 LL step bound and zero defensive
// retries for jp-labelled variables, exactly one bank write per successful
// SC (invariant I2), the <= 3-round bound of the apps-layer help-all
// construction, and the membership lifecycle discipline (pid leases never
// overlap, nobody retires mid-LL, retired/reclaimed pids stay silent until
// rejoined). This makes a trace file a portable correctness artifact: the
// same rules run on live rings (tests/test_obs) and on a file from another
// machine or CI run.
//
// Usage: trace_check FILE...
// Exit:  0 if every file loads and checks clean, 1 otherwise.
#include <cinttypes>
#include <cstdio>
#include <string>

#include "obs/export.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    mwllsc::obs::TraceData d;
    std::string err;
    if (!mwllsc::obs::load_chrome_trace(path, &d, &err)) {
      std::fprintf(stderr, "%s: load failed: %s\n", path.c_str(),
                   err.c_str());
      all_ok = false;
      continue;
    }
    const auto r = mwllsc::obs::check_trace(d);
    std::printf("%s: %" PRIu64 " events, %zu procs, %zu vars\n",
                path.c_str(), d.total_events(), d.per_pid.size(),
                d.vars.size());
    if (r.sampled) {
      std::printf("  sampled trace (shift=%u): sequencing checks skipped\n",
                  d.sample_shift);
      continue;
    }
    std::printf("  LLs checked:   %" PRIu64
                "  (worst derived steps on jp vars: %" PRIu64 ")\n",
                r.lls_checked, r.max_ll_steps);
    std::printf("  SC commits:    %" PRIu64 "   bank writes: %" PRIu64
                "   applies: %" PRIu64 "%s\n",
                r.sc_commits, r.bank_writes, r.applies_checked,
                r.truncated ? "   [ring-truncated prefix tolerated]" : "");
    if (r.joins + r.retires + r.crash_reclaims > 0) {
      std::printf("  lifecycle:     %" PRIu64 " joins   %" PRIu64
                  " retires   %" PRIu64 " crash reclaims\n",
                  r.joins, r.retires, r.crash_reclaims);
    }
    for (const auto& v : d.vars) {
      std::printf("    var %u: W=%u \"%s\"\n", v.id, v.words,
                  v.label.c_str());
    }
    if (r.ok()) {
      std::printf("  OK: 4W+12 and I2 hold over the recorded events\n");
    } else {
      all_ok = false;
      std::printf("  %zu VIOLATIONS:\n", r.violations.size());
      for (const auto& v : r.violations) {
        std::printf("    %s\n", v.c_str());
      }
    }
  }
  return all_ok ? 0 : 1;
}
